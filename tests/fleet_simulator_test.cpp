#include "sim/fleet_simulator.h"

#include "sim/runner.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/presets.h"
#include "stats/basic_distributions.h"
#include "stats/weibull.h"
#include "util/error.h"
#include "util/math.h"

namespace raidrel::sim {
namespace {

using raid::GroupConfig;
using raid::SlotModel;
using stats::Degenerate;

SlotModel scripted_slot(double op, double restore, double ld = 1e18,
                        double scrub = -1.0) {
  SlotModel m;
  m.time_to_op_failure = std::make_unique<Degenerate>(op);
  m.time_to_restore = std::make_unique<Degenerate>(restore);
  m.time_to_latent_defect = std::make_unique<Degenerate>(ld);
  if (scrub >= 0.0) m.time_to_scrub = std::make_unique<Degenerate>(scrub);
  return m;
}

TEST(FleetSimulator, SingleGroupMatchesGroupSimulatorExactly) {
  // A fleet of one group with no shared pool must reproduce GroupSimulator
  // draw for draw — same events, same RNG consumption.
  const auto group = core::presets::base_case().to_group_config();
  FleetConfig fleet;
  fleet.groups.push_back(group.clone());

  GroupSimulator single(group);
  FleetSimulator multi(fleet);
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    rng::RandomStream rs1(seed), rs2(seed);
    TrialResult a;
    FleetTrialResult b;
    single.run_trial(rs1, a);
    multi.run_trial(rs2, b);
    const TrialResult& g0 = b.per_group[0];
    ASSERT_EQ(a.ddfs.size(), g0.ddfs.size()) << seed;
    for (std::size_t i = 0; i < a.ddfs.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.ddfs[i].time, g0.ddfs[i].time);
      EXPECT_EQ(a.ddfs[i].kind, g0.ddfs[i].kind);
    }
    EXPECT_EQ(a.op_failures, g0.op_failures) << seed;
    EXPECT_EQ(a.latent_defects, g0.latent_defects) << seed;
    EXPECT_EQ(a.scrubs_completed, g0.scrubs_completed) << seed;
    EXPECT_EQ(a.restores_completed, g0.restores_completed) << seed;
  }
}

TEST(FleetSimulator, SharedPoolContentionAcrossGroups) {
  // Two 2-drive groups, one shared spare with a 100 h lead. Group 0's
  // drive fails at 50 and takes the spare; group 1's failure at 80 must
  // wait for the 150 arrival.
  FleetConfig fleet;
  for (int g = 0; g < 2; ++g) {
    GroupConfig cfg;
    cfg.redundancy = 1;
    cfg.mission_hours = 400.0;
    cfg.slots.push_back(scripted_slot(g == 0 ? 50.0 : 80.0, 10.0));
    cfg.slots.push_back(scripted_slot(1e18, 10.0));
    fleet.groups.push_back(std::move(cfg));
  }
  fleet.shared_pool = raid::SparePoolConfig{1, 100.0};
  FleetSimulator sim(fleet);
  rng::RandomStream rs(1);
  FleetTrialResult out;
  sim.run_trial(rs, out);
  // FIFO service across groups. Worked timeline: G0 takes the spare at 50
  // (restored 60, reorder->150); G1 waits from 80; G0's second failure at
  // 110 queues behind it; the 150 arrival serves G1 (restored 160,
  // reorder->250); 250 serves G0 (restored 260, reorder->350); G1 fails
  // again at 240 and is served at 350 (restored 360); G0's third failure
  // at 310 is still waiting when the mission ends at 400.
  EXPECT_EQ(out.per_group[0].op_failures, 3u);   // 50, 110, 310
  EXPECT_EQ(out.per_group[0].restores_completed, 2u);  // 60, 260
  EXPECT_EQ(out.per_group[1].op_failures, 2u);   // 80, 240
  EXPECT_EQ(out.per_group[1].restores_completed, 2u);  // 160, 360
  // No DDFs: each group's *other* drive never fails, and fault census is
  // per group — group 1 waiting does not endanger group 0.
  EXPECT_EQ(out.total_ddfs(), 0u);
}

TEST(FleetSimulator, PoolStarvationCreatesCorrelatedExposure) {
  // A failure burst across many groups with a tiny shared pool leaves
  // drives waiting; statistically this must produce more DDFs than ample
  // sparing.
  auto make_fleet = [](unsigned capacity) {
    FleetConfig fleet;
    for (int g = 0; g < 10; ++g) {
      SlotModel m;
      m.time_to_op_failure =
          std::make_unique<stats::Weibull>(0.0, 4000.0, 1.0);
      m.time_to_restore = std::make_unique<stats::Weibull>(6.0, 50.0, 2.0);
      fleet.groups.push_back(raid::make_uniform_group(4, 1, m, 20000.0));
    }
    fleet.shared_pool = raid::SparePoolConfig{capacity, 500.0};
    return fleet;
  };
  const auto starved_cfg = make_fleet(1);
  const auto ample_cfg = make_fleet(50);
  FleetSimulator starved(starved_cfg);
  FleetSimulator ample(ample_cfg);
  rng::StreamFactory streams(7);
  FleetTrialResult out;
  std::size_t ddfs_starved = 0, ddfs_ample = 0;
  for (std::uint64_t i = 0; i < 400; ++i) {
    auto rs1 = streams.stream(i);
    starved.run_trial(rs1, out);
    ddfs_starved += out.total_ddfs();
    auto rs2 = streams.stream(i);
    ample.run_trial(rs2, out);
    ddfs_ample += out.total_ddfs();
  }
  EXPECT_GT(ddfs_starved, 2 * ddfs_ample);
}

TEST(FleetSimulator, AmpleSharedPoolMatchesIndependentGroups) {
  // With a huge pool and instant-ish replenishment the groups cannot
  // interact: fleet aggregate statistics match independent single-group
  // runs within Monte Carlo noise.
  const auto group = core::presets::base_case().to_group_config();
  FleetConfig fleet;
  for (int g = 0; g < 4; ++g) fleet.groups.push_back(group.clone());
  fleet.shared_pool = raid::SparePoolConfig{1000, 1.0};
  FleetSimulator sim(fleet);
  rng::StreamFactory streams(9);
  FleetTrialResult out;
  util::RunningStats fleet_ddfs;
  const int trials = 1500;
  for (std::uint64_t i = 0; i < trials; ++i) {
    auto rs = streams.stream(i);
    sim.run_trial(rs, out);
    fleet_ddfs.add(static_cast<double>(out.total_ddfs()));
  }
  GroupSimulator single(group);
  TrialResult single_out;
  util::RunningStats single_ddfs;
  rng::StreamFactory streams2(10);
  for (std::uint64_t i = 0; i < trials; ++i) {
    auto rs = streams2.stream(i);
    single.run_trial(rs, single_out);
    single_ddfs.add(static_cast<double>(single_out.ddfs.size()));
  }
  const double sem = std::sqrt(fleet_ddfs.sem() * fleet_ddfs.sem() +
                               16.0 * single_ddfs.sem() * single_ddfs.sem());
  EXPECT_NEAR(fleet_ddfs.mean(), 4.0 * single_ddfs.mean(), 5.0 * sem);
}

TEST(FleetRunner, NormalizationMatchesSingleGroupRunner) {
  // Fleet of independent groups (huge pool): per-1000-group-mission
  // normalization must land on the single-group runner's numbers.
  const auto group = core::presets::base_case().to_group_config();
  FleetConfig fleet;
  for (int g = 0; g < 5; ++g) fleet.groups.push_back(group.clone());
  fleet.shared_pool = raid::SparePoolConfig{10000, 1.0};
  const auto fleet_run = run_fleet_monte_carlo(
      fleet, {.trials = 800, .seed = 21, .threads = 0,
              .bucket_hours = 730.0});
  EXPECT_EQ(fleet_run.trials(), 4000u);  // 800 trials x 5 groups
  const auto single_run = run_monte_carlo(
      group, {.trials = 4000, .seed = 22, .threads = 0,
              .bucket_hours = 730.0});
  const double sem = fleet_run.total_ddfs_per_1000_sem() +
                     single_run.total_ddfs_per_1000_sem();
  EXPECT_NEAR(fleet_run.total_ddfs_per_1000(),
              single_run.total_ddfs_per_1000(), 6.0 * sem);
}

TEST(FleetRunner, ThreadCountDoesNotChangeCounts) {
  FleetConfig fleet;
  for (int g = 0; g < 3; ++g) {
    SlotModel m;
    m.time_to_op_failure = std::make_unique<stats::Weibull>(0.0, 4000.0, 1.0);
    m.time_to_restore = std::make_unique<stats::Weibull>(6.0, 50.0, 2.0);
    fleet.groups.push_back(raid::make_uniform_group(4, 1, m, 20000.0));
  }
  fleet.shared_pool = raid::SparePoolConfig{2, 200.0};
  const RunOptions base{.trials = 200, .seed = 23, .threads = 1,
                        .bucket_hours = 1000.0};
  RunOptions multi = base;
  multi.threads = 4;
  const auto a = run_fleet_monte_carlo(fleet, base);
  const auto b = run_fleet_monte_carlo(fleet, multi);
  EXPECT_DOUBLE_EQ(a.total_ddfs_per_1000(), b.total_ddfs_per_1000());
  EXPECT_EQ(a.op_failures(), b.op_failures());
}

TEST(FleetSimulator, Validation) {
  FleetConfig empty;
  EXPECT_THROW(FleetSimulator{empty}, ModelError);

  // Mission mismatch.
  FleetConfig mismatch;
  mismatch.groups.push_back(core::presets::base_case().to_group_config());
  auto other = core::presets::base_case().to_group_config();
  other.mission_hours = 1000.0;
  mismatch.groups.push_back(std::move(other));
  EXPECT_THROW(FleetSimulator{mismatch}, ModelError);

  // Private pools under a shared one.
  FleetConfig pools;
  auto g = core::presets::base_case().to_group_config();
  g.spare_pool = raid::SparePoolConfig{1, 24.0};
  pools.groups.push_back(std::move(g));
  pools.shared_pool = raid::SparePoolConfig{4, 24.0};
  EXPECT_THROW(FleetSimulator{pools}, ModelError);

  // Stripe zones unsupported.
  FleetConfig zones;
  auto z = core::presets::base_case().to_group_config();
  z.stripe_zones = 100;
  zones.groups.push_back(std::move(z));
  EXPECT_THROW(FleetSimulator{zones}, ModelError);
}

}  // namespace
}  // namespace raidrel::sim
