#include "stats/gof.h"

#include <gtest/gtest.h>

#include "rng/rng.h"
#include "stats/basic_distributions.h"
#include "stats/weibull.h"
#include "util/error.h"

namespace raidrel::stats {
namespace {

std::vector<double> draw(const Distribution& d, int n, std::uint64_t seed) {
  rng::RandomStream rs(seed);
  std::vector<double> out(n);
  for (auto& x : out) x = d.sample(rs);
  return out;
}

TEST(KolmogorovPValue, KnownAsymptotics) {
  // sqrt(n) D = 1.36 is the classic 5% critical value.
  EXPECT_NEAR(kolmogorov_p_value(1.36 / 100.0, 10000), 0.05, 0.01);
  // Tiny statistic -> p ~ 1; huge statistic -> p ~ 0.
  EXPECT_GT(kolmogorov_p_value(1e-4, 100), 0.999);
  EXPECT_LT(kolmogorov_p_value(0.5, 1000), 1e-10);
}

TEST(KsTest, AcceptsTrueDistribution) {
  const Weibull w(0.0, 100.0, 1.5);
  const auto r = ks_test(draw(w, 5000, 1), w);
  EXPECT_LT(r.statistic, 0.03);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(KsTest, RejectsWrongShape) {
  const Weibull truth(0.0, 100.0, 3.0);
  const Weibull wrong(0.0, 100.0, 1.0);
  const auto r = ks_test(draw(truth, 5000, 2), wrong);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(KsTest, RejectsWrongScale) {
  const Exponential truth(1.0 / 100.0);
  const Exponential wrong(1.0 / 150.0);
  const auto r = ks_test(draw(truth, 8000, 3), wrong);
  EXPECT_LT(r.p_value, 1e-4);
}

TEST(KsTest, StatisticIsSupDifference) {
  // Two points at the 0.25/0.75 quantiles of U(0,1): D = 0.25.
  const Uniform u(0.0, 1.0);
  const auto r = ks_test({0.25, 0.75}, u);
  EXPECT_NEAR(r.statistic, 0.25, 1e-12);
  EXPECT_EQ(r.n, 2u);
}

TEST(ChiSquare, AcceptsTrueDistribution) {
  const Weibull w(6.0, 12.0, 2.0);
  const auto r = chi_square_test(draw(w, 10000, 4), w, 20);
  EXPECT_EQ(r.dof, 19u);
  EXPECT_GT(r.p_value, 0.001);
}

TEST(ChiSquare, RejectsWrongDistribution) {
  const Weibull truth(0.0, 100.0, 0.8);
  const Weibull wrong(0.0, 100.0, 1.6);
  const auto r = chi_square_test(draw(truth, 10000, 5), wrong, 20);
  EXPECT_LT(r.p_value, 1e-10);
}

TEST(ChiSquare, DofAccountsForEstimatedParams) {
  const Weibull w(0.0, 50.0, 1.0);
  const auto r = chi_square_test(draw(w, 2000, 6), w, 10, 2);
  EXPECT_EQ(r.dof, 7u);
}

TEST(ChiSquare, ValidatesInput) {
  const Weibull w(0.0, 50.0, 1.0);
  const auto samples = draw(w, 20, 7);
  EXPECT_THROW(chi_square_test(samples, w, 10), ModelError);   // too few
  EXPECT_THROW(chi_square_test(samples, w, 1), ModelError);    // 1 bin
  const auto more = draw(w, 100, 8);
  EXPECT_THROW(chi_square_test(more, w, 3, 5), ModelError);    // dof <= 0
}

TEST(AndersonDarling, AcceptsTrueDistribution) {
  const Weibull w(0.0, 100.0, 1.5);
  const auto r = anderson_darling_test(draw(w, 4000, 11), w);
  EXPECT_GT(r.p_value, 0.005);
  EXPECT_LT(r.statistic, 4.0);
}

TEST(AndersonDarling, RejectsWrongShape) {
  const Weibull truth(0.0, 100.0, 2.0);
  const Weibull wrong(0.0, 100.0, 1.0);
  const auto r = anderson_darling_test(draw(truth, 4000, 12), wrong);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(AndersonDarling, CriticalValueCalibration) {
  // Case-0 5% critical value of A^2 is ~2.492: p(2.492) ~ 0.05.
  const Uniform u(0.0, 1.0);
  // Build a synthetic sample whose statistic we only use via the p-curve:
  // instead, check the p-value formula monotonicity around the critical
  // point using crafted statistics through the public API is indirect, so
  // verify empirically: uniform samples against the true law produce
  // p-values spread over (0,1) and reject ~5% of the time at alpha=0.05.
  int rejects = 0;
  const int experiments = 200;
  for (int e = 0; e < experiments; ++e) {
    rng::RandomStream rs(1000 + e);
    std::vector<double> s(100);
    for (auto& x : s) x = rs.uniform();
    if (anderson_darling_test(std::move(s), u).p_value < 0.05) ++rejects;
  }
  // Binomial(200, 0.05): mean 10, sd ~3.1; accept a wide band.
  EXPECT_GE(rejects, 1);
  EXPECT_LE(rejects, 25);
}

TEST(AndersonDarling, MoreSensitiveThanKsToTailError) {
  // Same eta, shifted lower tail: a 3-parameter Weibull mistaken for a
  // 2-parameter one. AD (tail-weighted) should produce a p-value no
  // larger than KS on the same data.
  const Weibull truth(20.0, 100.0, 2.0);
  const Weibull wrong(0.0, 120.0, 2.0);
  const auto samples = draw(truth, 2000, 13);
  const auto ad = anderson_darling_test(samples, wrong);
  const auto ks = ks_test(samples, wrong);
  EXPECT_LE(ad.p_value, ks.p_value + 1e-12);
}

TEST(AndersonDarling, NeedsEnoughSamples) {
  const Weibull w(0.0, 1.0, 1.0);
  EXPECT_THROW(anderson_darling_test({1.0, 2.0}, w), ModelError);
}

TEST(PoissonCi, KnownTableValues) {
  // Garwood exact 95% CI for observed counts (standard tables).
  const auto c0 = poisson_mean_ci(0, 0.95);
  EXPECT_DOUBLE_EQ(c0.lower, 0.0);
  EXPECT_NEAR(c0.upper, 3.689, 0.002);
  const auto c5 = poisson_mean_ci(5, 0.95);
  EXPECT_NEAR(c5.lower, 1.623, 0.002);
  EXPECT_NEAR(c5.upper, 11.668, 0.002);
  const auto c100 = poisson_mean_ci(100, 0.95);
  EXPECT_NEAR(c100.lower, 81.36, 0.05);
  EXPECT_NEAR(c100.upper, 121.63, 0.05);
}

TEST(PoissonCi, CoverageAtNominalRate) {
  // Simulate Poisson(12) counts; the 90% CI must cover 12 about 90% of
  // the time (exact intervals are conservative: >= nominal).
  rng::RandomStream rs(77);
  const Exponential gap(1.0);
  int covered = 0;
  const int experiments = 400;
  for (int e = 0; e < experiments; ++e) {
    std::uint64_t count = 0;
    double t = gap.sample(rs);
    while (t <= 12.0) {
      ++count;
      t += gap.sample(rs);
    }
    const auto ci = poisson_mean_ci(count, 0.90);
    covered += (ci.lower <= 12.0 && 12.0 <= ci.upper) ? 1 : 0;
  }
  EXPECT_GE(covered, static_cast<int>(0.87 * experiments));
}

TEST(PoissonCi, WidthShrinksRelatively) {
  const auto small = poisson_mean_ci(10, 0.95);
  const auto large = poisson_mean_ci(1000, 0.95);
  EXPECT_GT((small.upper - small.lower) / 10.0,
            (large.upper - large.lower) / 1000.0);
}

TEST(PoissonCi, Validation) {
  EXPECT_THROW(poisson_mean_ci(5, 0.0), ModelError);
  EXPECT_THROW(poisson_mean_ci(5, 1.0), ModelError);
}

TEST(KsTest, PowerGrowsWithSampleSize) {
  const Weibull truth(0.0, 100.0, 1.2);
  const Weibull wrong(0.0, 100.0, 1.0);
  const auto small = ks_test(draw(truth, 200, 9), wrong);
  const auto large = ks_test(draw(truth, 20000, 9), wrong);
  EXPECT_LT(large.p_value, small.p_value);
}

}  // namespace
}  // namespace raidrel::stats
