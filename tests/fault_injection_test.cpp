// Deterministic fault injection (fault/fault_injection.h): the CLI plan
// grammar, the closed site registry, and the fire-by-hit / fire-by-key
// semantics everything in the fail-safe sweep stack builds on.
#include "fault/fault_injection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>

#include "util/cancel.h"
#include "util/error.h"

namespace {

using raidrel::ModelError;
using raidrel::SiteError;
using namespace raidrel::fault;
namespace util = raidrel::util;

TEST(FaultRegistry, IsClosedSortedAndQueryable) {
  const std::vector<std::string>& sites = registered_sites();
  ASSERT_FALSE(sites.empty());
  EXPECT_TRUE(std::is_sorted(sites.begin(), sites.end()));
  for (const std::string& site : sites) {
    EXPECT_TRUE(is_registered_site(site)) << site;
  }
  // The exact registry is part of the public contract: CI enumerates it
  // and docs/MODEL.md §11 mirrors it. Growing it is fine — silently is not.
  const std::vector<std::string> expected = {
      "cell",          "manifest_read", "manifest_rename",
      "manifest_write", "pool_task",    "runner_trial",
  };
  EXPECT_EQ(sites, expected);
  EXPECT_FALSE(is_registered_site("no_such_site"));
  EXPECT_FALSE(is_registered_site(""));
}

TEST(FaultPlanParse, GrammarCoversSiteHitKeyAndCount) {
  const FaultPlan plan = FaultPlan::parse(
      "cell,manifest_write:2,runner_trial:1*9,cell:scrub=168,pool_task:3*2");
  ASSERT_EQ(plan.specs().size(), 5u);

  EXPECT_EQ(plan.specs()[0].site, "cell");
  EXPECT_EQ(plan.specs()[0].first_hit, 1u);
  EXPECT_EQ(plan.specs()[0].count, 1u);
  EXPECT_TRUE(plan.specs()[0].key.empty());

  EXPECT_EQ(plan.specs()[1].site, "manifest_write");
  EXPECT_EQ(plan.specs()[1].first_hit, 2u);

  EXPECT_EQ(plan.specs()[2].site, "runner_trial");
  EXPECT_EQ(plan.specs()[2].first_hit, 1u);
  EXPECT_EQ(plan.specs()[2].count, 9u);

  // Non-numeric argument = work-unit key, deterministic under any thread
  // count because it names the unit instead of an arrival index.
  EXPECT_EQ(plan.specs()[3].site, "cell");
  EXPECT_EQ(plan.specs()[3].key, "scrub=168");

  EXPECT_EQ(plan.specs()[4].first_hit, 3u);
  EXPECT_EQ(plan.specs()[4].count, 2u);
}

TEST(FaultPlanParse, RejectsMalformedPlans) {
  EXPECT_THROW(FaultPlan::parse(""), ModelError);
  EXPECT_THROW(FaultPlan::parse("unknown_site"), ModelError);
  EXPECT_THROW(FaultPlan::parse("cell,"), ModelError);
  EXPECT_THROW(FaultPlan::parse("cell:0"), ModelError);      // 1-based hits
  EXPECT_THROW(FaultPlan::parse("cell:"), ModelError);
  EXPECT_THROW(FaultPlan::parse("cell*0"), ModelError);
  EXPECT_THROW(FaultPlan::parse("cell*x"), ModelError);
  EXPECT_THROW(FaultPlan::parse("cell,bogus:1"), ModelError);
}

TEST(FaultPlanArm, ValidatesProgrammaticSpecs) {
  FaultPlan plan;
  plan.arm({"cell", 1, 1, ""});
  EXPECT_THROW(plan.arm({"not_a_site", 1, 1, ""}), ModelError);
  EXPECT_THROW(plan.arm({"cell", 0, 1, ""}), ModelError);
  EXPECT_THROW(plan.arm({"cell", 1, 0, ""}), ModelError);
  EXPECT_EQ(plan.specs().size(), 1u);
}

TEST(FaultInjector, EmptyPlanCountsButNeverThrows) {
  FaultInjector injector{FaultPlan{}};
  for (int i = 0; i < 100; ++i) {
    EXPECT_NO_THROW(injector.check("runner_trial"));
  }
  EXPECT_EQ(injector.hits("runner_trial"), 100u);
  EXPECT_EQ(injector.injected("runner_trial"), 0u);
  EXPECT_EQ(injector.total_injected(), 0u);
}

TEST(FaultInjector, FiresExactlyTheArmedHitWindow) {
  FaultInjector injector{FaultPlan::parse("runner_trial:3*2")};
  EXPECT_NO_THROW(injector.check("runner_trial"));  // hit 1
  EXPECT_NO_THROW(injector.check("runner_trial"));  // hit 2
  EXPECT_THROW(injector.check("runner_trial"), InjectedFault);  // hit 3
  EXPECT_THROW(injector.check("runner_trial"), InjectedFault);  // hit 4
  EXPECT_NO_THROW(injector.check("runner_trial"));  // hit 5: window over
  EXPECT_EQ(injector.hits("runner_trial"), 5u);
  EXPECT_EQ(injector.injected("runner_trial"), 2u);
}

TEST(FaultInjector, ReplaysBitIdenticallyAcrossInstances) {
  // The whole point: the fire pattern is a pure function of hit counts.
  auto pattern = [] {
    FaultInjector injector{FaultPlan::parse("cell:2*3,cell:7")};
    std::string fired;
    for (int i = 0; i < 10; ++i) {
      try {
        injector.check("cell");
        fired += '.';
      } catch (const InjectedFault&) {
        fired += 'X';
      }
    }
    return fired;
  };
  const std::string first = pattern();
  EXPECT_EQ(first, ".XXX..X...");
  EXPECT_EQ(pattern(), first);
}

TEST(FaultInjector, KeyedSpecsFireOnMatchingWorkUnitOnly) {
  FaultInjector injector{FaultPlan::parse("cell:scrub=168*2")};
  EXPECT_NO_THROW(injector.check("cell", "scrub=48"));
  EXPECT_THROW(injector.check("cell", "scrub=168"), InjectedFault);
  EXPECT_NO_THROW(injector.check("cell", "scrub=336"));
  EXPECT_THROW(injector.check("cell", "scrub=168"), InjectedFault);
  // Budget of 2 consumed: the key now passes, which is what lets a
  // retried cell recover deterministically.
  EXPECT_NO_THROW(injector.check("cell", "scrub=168"));
  EXPECT_EQ(injector.injected("cell"), 2u);
  EXPECT_EQ(injector.hits("cell"), 5u);
}

TEST(FaultInjector, ThrownFaultCarriesSiteHitAndKey) {
  FaultInjector injector{FaultPlan::parse("manifest_write:1")};
  try {
    injector.check("manifest_write", "path.json");
    FAIL() << "armed site did not fire";
  } catch (const InjectedFault& e) {
    EXPECT_EQ(e.site(), "manifest_write");
    EXPECT_EQ(e.hit(), 1u);
    EXPECT_NE(std::string(e.what()).find("manifest_write"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("path.json"), std::string::npos);
    // Generic handlers catch it as a SiteError and recover the site.
    const SiteError& as_site = e;
    EXPECT_EQ(as_site.site(), "manifest_write");
  }
}

TEST(FaultPlanParse, GrammarCoversDelayAndHangKinds) {
  const FaultPlan plan = FaultPlan::parse(
      "cell:3@250,manifest_write@hang,cell:scrub=48@hang,runner_trial:1*9@15");
  ASSERT_EQ(plan.specs().size(), 4u);

  EXPECT_EQ(plan.specs()[0].site, "cell");
  EXPECT_EQ(plan.specs()[0].first_hit, 3u);
  EXPECT_EQ(plan.specs()[0].delay_ms, 250.0);
  EXPECT_TRUE(plan.specs()[0].is_delay());

  EXPECT_EQ(plan.specs()[1].site, "manifest_write");
  EXPECT_TRUE(std::isinf(plan.specs()[1].delay_ms));

  // The kind suffix composes with key matching and fire counts.
  EXPECT_EQ(plan.specs()[2].key, "scrub=48");
  EXPECT_TRUE(std::isinf(plan.specs()[2].delay_ms));
  EXPECT_EQ(plan.specs()[3].count, 9u);
  EXPECT_EQ(plan.specs()[3].delay_ms, 15.0);

  // Specs without the suffix keep the throwing kind.
  EXPECT_LT(FaultPlan::parse("cell").specs()[0].delay_ms, 0.0);
  EXPECT_FALSE(FaultPlan::parse("cell").specs()[0].is_delay());
}

TEST(FaultPlanParse, RejectsMalformedDelays) {
  EXPECT_THROW(FaultPlan::parse("cell@"), ModelError);
  EXPECT_THROW(FaultPlan::parse("cell@abc"), ModelError);
  EXPECT_THROW(FaultPlan::parse("cell@-5"), ModelError);
  EXPECT_THROW(FaultPlan::parse("cell@2.5"), ModelError);  // whole ms only
}

TEST(FaultInjector, DelayKindSleepsThenReturnsNormally) {
  FaultInjector injector{FaultPlan::parse("runner_trial:1@20")};
  const auto start = std::chrono::steady_clock::now();
  EXPECT_NO_THROW(injector.check("runner_trial"));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed, 0.02);  // sleep_for guarantees at least the duration
  EXPECT_EQ(injector.delayed("runner_trial"), 1u);
  EXPECT_EQ(injector.injected("runner_trial"), 0u);
  // The window is one hit wide: the next check is undelayed.
  EXPECT_NO_THROW(injector.check("runner_trial"));
  EXPECT_EQ(injector.delayed("runner_trial"), 1u);
  EXPECT_EQ(injector.hits("runner_trial"), 2u);
}

TEST(FaultInjector, HangWithoutCancellationContextIsRefused) {
  // Wedging a thread nothing can unwedge must fail loudly, not deadlock.
  FaultInjector injector{FaultPlan::parse("cell@hang")};
  ASSERT_EQ(util::current_cancel_token(), nullptr);
  EXPECT_THROW(injector.check("cell"), ModelError);
  EXPECT_EQ(injector.injected("cell"), 0u);
}

TEST(FaultInjector, HangBreaksOnTheThreadsCancellationContext) {
  FaultInjector injector{FaultPlan::parse("cell@hang")};
  util::CancelToken token;
  token.request_cancel();
  const util::CancelScope scope(&token);
  try {
    injector.check("cell");
    FAIL() << "hang did not observe the cancelled token";
  } catch (const util::OperationCancelled& e) {
    EXPECT_EQ(e.reason(), util::CancelReason::kCancelled);
  }
  // A broken hang is both a delay that fired and an observed failure.
  EXPECT_EQ(injector.delayed("cell"), 1u);
  EXPECT_EQ(injector.injected("cell"), 1u);
}

TEST(FaultInjector, RefusesUnregisteredCheckSites) {
  FaultInjector injector{FaultPlan{}};
  // A call site that is not enumerable by CI must fail loudly, not count
  // quietly.
  EXPECT_THROW(injector.check("made_up_site"), ModelError);
}

}  // namespace
