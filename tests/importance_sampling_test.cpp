// The importance-sampling layer (docs/MODEL.md §13) makes two promises.
// First, a present-but-unit tilt is *bit-identical* to the plain engines —
// same draws, same event histories, same aggregates — across every batch
// width and kernel policy, so the weighted path can be kept permanently
// honest against the unweighted one. Second, an engaged tilt changes only
// the estimator's variance, never its target: tilted estimates must agree
// with untilted ones, and with an exact CTMC where one exists, within
// Monte Carlo error.
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "analytic/markov.h"
#include "obs/run_telemetry.h"
#include "sim/convergence.h"
#include "sim/fleet_simulator.h"
#include "sim/runner.h"
#include "stats/basic_distributions.h"
#include "stats/composite.h"
#include "stats/weibull.h"
#include "sweep/sweep_runner.h"
#include "sweep/sweep_spec.h"
#include "util/error.h"

namespace raidrel::sim {
namespace {

raid::GroupConfig busy_group() {
  // Failure-heavy, with a spare pool so the cold paths (spare traffic,
  // freeze handling) run under the weighted samplers too.
  raid::SlotModel m;
  m.time_to_op_failure = std::make_unique<stats::Weibull>(0.0, 4000.0, 1.2);
  m.time_to_restore = std::make_unique<stats::Weibull>(6.0, 100.0, 2.0);
  m.time_to_latent_defect = std::make_unique<stats::Weibull>(0.0, 2000.0, 1.0);
  m.time_to_scrub = std::make_unique<stats::Weibull>(6.0, 300.0, 3.0);
  auto cfg = raid::make_uniform_group(8, 1, m, 20000.0);
  cfg.spare_pool = raid::SparePoolConfig{2, 200.0};
  return cfg;
}

RunOptions options_for(std::size_t width, KernelPolicy policy) {
  RunOptions opt{.trials = 400, .seed = 11, .threads = 1,
                 .bucket_hours = 1000.0};
  opt.kernel_policy = policy;
  opt.batch_width = width;
  return opt;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.trials(), b.trials());
  EXPECT_EQ(a.op_failures(), b.op_failures());
  EXPECT_EQ(a.latent_defects(), b.latent_defects());
  EXPECT_EQ(a.scrubs_completed(), b.scrubs_completed());
  EXPECT_EQ(a.restores_completed(), b.restores_completed());
  EXPECT_EQ(a.spare_arrivals(), b.spare_arrivals());
  const auto ca = a.cumulative_ddfs_per_1000();
  const auto cb = b.cumulative_ddfs_per_1000();
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t i = 0; i < ca.size(); ++i) {
    EXPECT_DOUBLE_EQ(ca[i], cb[i]) << "bucket " << i;
  }
  EXPECT_DOUBLE_EQ(a.total_ddfs_per_1000(Estimator::kDoubleOpProbe),
                   b.total_ddfs_per_1000(Estimator::kDoubleOpProbe));
}

TEST(ImportanceSampling, UnitTiltBitIdenticalAcrossWidthsAndPolicies) {
  // Acceptance criterion: widths {1, 64} x both engines. Width 1 runs the
  // scalar GroupSimulator, width 64 the batched lockstep engine; the
  // virtual-only policy additionally proves the kVirtual forwarding arm
  // consumes no extra draws.
  const auto cfg = busy_group();
  for (const auto policy :
       {KernelPolicy::kLowered, KernelPolicy::kVirtualOnly}) {
    for (const std::size_t width : {std::size_t{1}, std::size_t{64}}) {
      const auto plain = run_monte_carlo(cfg, options_for(width, policy));
      auto tilted_opt = options_for(width, policy);
      tilted_opt.tilt = TiltSpec{};  // present but unit
      const auto unit = run_monte_carlo(cfg, tilted_opt);
      SCOPED_TRACE(testing::Message()
                   << "policy=" << static_cast<int>(policy)
                   << " width=" << width);
      expect_identical(plain, unit);
      // Unit weights: every trial contributes exactly 1.0.
      EXPECT_DOUBLE_EQ(unit.ess(), static_cast<double>(unit.trials()));
      EXPECT_DOUBLE_EQ(unit.weight_sum(), static_cast<double>(unit.trials()));
      EXPECT_DOUBLE_EQ(unit.max_weight(), 1.0);
    }
  }
}

TEST(ImportanceSampling, UntiltedRunHasUnitWeights) {
  const auto r = run_monte_carlo(busy_group(), options_for(64, {}));
  EXPECT_DOUBLE_EQ(r.ess(), static_cast<double>(r.trials()));
  EXPECT_DOUBLE_EQ(r.weight_sum(), static_cast<double>(r.trials()));
  EXPECT_DOUBLE_EQ(r.max_weight(), 1.0);
}

TEST(ImportanceSampling, TiltedEstimateAgreesWithPlain) {
  // An engaged tilt reweights the sample, not the target: the weighted
  // total-DDF estimate must agree with the plain one within the combined
  // standard errors. Exercises op and latent tilt together, both engines.
  const auto cfg = busy_group();
  RunOptions plain_opt{.trials = 6000, .seed = 21, .threads = 0,
                       .bucket_hours = 1000.0};
  const auto plain = run_monte_carlo(cfg, plain_opt);
  for (const std::size_t width : {std::size_t{1}, std::size_t{64}}) {
    RunOptions tilted_opt{.trials = 6000, .seed = 22, .threads = 0,
                          .bucket_hours = 1000.0};
    tilted_opt.batch_width = width;
    // A busy config has ~100 tilted draws per trial, so per-draw weight
    // variance compounds fast; rare-event studies tilt hard because few
    // draws matter, a busy study must tilt gently.
    tilted_opt.tilt = TiltSpec{1.1, 1.05};
    const auto tilted = run_monte_carlo(cfg, tilted_opt);
    const double sem = std::hypot(plain.total_ddfs_per_1000_sem(),
                                  tilted.total_ddfs_per_1000_sem());
    EXPECT_NEAR(tilted.total_ddfs_per_1000(), plain.total_ddfs_per_1000(),
                5.0 * sem)
        << "width " << width;
    // The tilt concentrates on failure paths: weights spread, ESS drops
    // below the trial count but must stay a real sample.
    EXPECT_LT(tilted.ess(), static_cast<double>(tilted.trials()));
    EXPECT_GT(tilted.ess(), 0.05 * static_cast<double>(tilted.trials()));
    EXPECT_GT(tilted.max_weight(), 0.0);
  }
}

TEST(ImportanceSampling, TiltedEstimateMatchesParallelRepairCtmc) {
  // All-exponential RAID-5-ish group: 4 drives, redundancy 1, memoryless
  // failures and repairs, no latent defects. The group is then exactly the
  // birth-death CTMC with state k = drives down, failure rate (N-k)*lambda
  // and *parallel* repair rate k*mu, absorbing at k = 2. (The library's
  // raid5_chain models a single repairman, which is not this simulator.)
  constexpr double kLambda = 1e-5;   // 1/eta
  constexpr double kMu = 0.1;        // 10 h mean rebuild
  constexpr double kMission = 10000.0;
  raid::SlotModel m;
  m.time_to_op_failure =
      std::make_unique<stats::Weibull>(0.0, 1.0 / kLambda, 1.0);
  m.time_to_restore = std::make_unique<stats::Weibull>(0.0, 1.0 / kMu, 1.0);
  const auto cfg = raid::make_uniform_group(4, 1, m, kMission);

  const std::vector<double> q = {
      -4.0 * kLambda, 4.0 * kLambda,        0.0,
      kMu,            -(kMu + 3.0 * kLambda), 3.0 * kLambda,
      0.0,            0.0,                  0.0};
  const analytic::MarkovChain chain(3, q);
  const double p = chain.absorption_probability(0, 2, kMission);
  ASSERT_LT(p, 5e-4);  // rare enough that brute force would struggle
  ASSERT_GT(p, 1e-5);

  RunOptions opt{.trials = 40000, .seed = 33, .threads = 0,
                 .bucket_hours = 2000.0};
  opt.tilt = TiltSpec{4.0, 1.0};
  const auto r = run_monte_carlo(cfg, opt);
  const double estimate = r.total_ddfs_per_1000() / 1000.0;
  const double sem = r.total_ddfs_per_1000_sem() / 1000.0;
  ASSERT_GT(sem, 0.0);
  EXPECT_NEAR(estimate, p, 5.0 * sem + 0.02 * p);
  // The same budget untilted would see ~p*trials (a handful) of events;
  // the tilt must retain a usable effective sample while doing far better.
  EXPECT_GT(r.ess(), 100.0);
}

TEST(ImportanceSampling, RejectsInvalidTheta) {
  const auto cfg = busy_group();
  for (const double bad : {0.0, -2.0}) {
    RunOptions opt{.trials = 10, .seed = 1, .threads = 1,
                   .bucket_hours = 1000.0};
    opt.tilt = TiltSpec{bad, 1.0};
    EXPECT_THROW(run_monte_carlo(cfg, opt), ModelError) << bad;
    opt.tilt = TiltSpec{1.0, bad};
    EXPECT_THROW(run_monte_carlo(cfg, opt), ModelError) << bad;
  }
}

TEST(ImportanceSampling, RejectsEngagedTiltOnVirtualLaws) {
  // kVirtualOnly forces every law onto the Distribution* fallback, which
  // has no exposed Exp(1) draw to tilt. Unit tilt stays legal (and is the
  // equivalence test above); engaged tilt must be rejected up front.
  const auto cfg = busy_group();
  RunOptions opt{.trials = 10, .seed = 1, .threads = 1,
                 .bucket_hours = 1000.0};
  opt.kernel_policy = KernelPolicy::kVirtualOnly;
  opt.tilt = TiltSpec{2.0, 1.0};
  EXPECT_THROW(run_monte_carlo(cfg, opt), ModelError);
  opt.tilt = TiltSpec{1.0, 2.0};
  EXPECT_THROW(run_monte_carlo(cfg, opt), ModelError);
  opt.tilt = TiltSpec{};  // unit: fine
  EXPECT_NO_THROW(run_monte_carlo(cfg, opt));
}

TEST(ImportanceSampling, RejectsEngagedTiltOnCompositeLawOnly) {
  // A composite op law is not lowerable: op tilt must throw, but tilting
  // only the (lowerable) latent law is still legal.
  raid::SlotModel m;
  std::vector<stats::DistributionPtr> risks;
  risks.push_back(std::make_unique<stats::Weibull>(0.0, 30000.0, 0.7));
  risks.push_back(std::make_unique<stats::Weibull>(0.0, 6000.0, 2.0));
  m.time_to_op_failure =
      std::make_unique<stats::CompetingRisks>(std::move(risks));
  m.time_to_restore = std::make_unique<stats::Weibull>(6.0, 100.0, 2.0);
  m.time_to_latent_defect = std::make_unique<stats::Weibull>(0.0, 2000.0, 1.0);
  m.time_to_scrub = std::make_unique<stats::Weibull>(6.0, 300.0, 3.0);
  const auto cfg = raid::make_uniform_group(6, 1, m, 20000.0);
  RunOptions opt{.trials = 50, .seed = 2, .threads = 1,
                 .bucket_hours = 1000.0};
  opt.tilt = TiltSpec{2.0, 1.0};
  EXPECT_THROW(run_monte_carlo(cfg, opt), ModelError);
  opt.tilt = TiltSpec{1.0, 2.0};
  EXPECT_NO_THROW(run_monte_carlo(cfg, opt));
}

TEST(ImportanceSampling, FleetRunsRejectEngagedTilt) {
  FleetConfig fleet;
  fleet.groups.push_back(busy_group());
  RunOptions opt{.trials = 10, .seed = 3, .threads = 1,
                 .bucket_hours = 1000.0};
  opt.tilt = TiltSpec{2.0, 1.0};
  EXPECT_THROW(run_fleet_monte_carlo(fleet, opt), ModelError);
}

TEST(ImportanceSampling, TelemetryRecordsDiagnosticsOnlyWhenEngaged) {
  const auto cfg = busy_group();
  obs::RunTelemetry tilted_tel;
  RunOptions opt{.trials = 400, .seed = 4, .threads = 1,
                 .bucket_hours = 1000.0};
  opt.telemetry = &tilted_tel;
  opt.tilt = TiltSpec{2.0, 1.5};
  const auto r = run_monte_carlo(cfg, opt);
  ASSERT_TRUE(tilted_tel.has_importance_sampling());
  const auto& is = tilted_tel.importance_sampling();
  EXPECT_DOUBLE_EQ(is.op_theta, 2.0);
  EXPECT_DOUBLE_EQ(is.ld_theta, 1.5);
  EXPECT_DOUBLE_EQ(is.ess, r.ess());
  EXPECT_NE(tilted_tel.json().find("\"importance_sampling\""),
            std::string::npos);

  // Unit tilt and plain runs keep the manifest byte-identical to before
  // the feature existed: no importance_sampling object at all.
  obs::RunTelemetry unit_tel;
  opt.telemetry = &unit_tel;
  opt.tilt = TiltSpec{};
  run_monte_carlo(cfg, opt);
  EXPECT_FALSE(unit_tel.has_importance_sampling());
  EXPECT_EQ(unit_tel.json().find("importance_sampling"), std::string::npos);
}

TEST(ImportanceSampling, ConvergenceForwardsTiltAndReportsEss) {
  ConvergenceOptions opt;
  opt.target_relative_sem = 0.25;
  opt.batch_trials = 500;
  opt.min_trials = 500;
  opt.max_trials = 50000;
  opt.seed = 5;
  opt.tilt = TiltSpec{1.5, 1.0};
  const auto run = run_until_converged(busy_group(), opt);
  ASSERT_TRUE(run.converged);
  EXPECT_GT(run.ess, 0.0);
  EXPECT_LT(run.ess, static_cast<double>(run.result.trials()));
  EXPECT_DOUBLE_EQ(run.ess, run.result.ess());
}

// Sweep integration: a tilt axis varies only the proposal, never the model,
// so every point shares the config digest but gets its own cache key.
TEST(ImportanceSampling, SweepTiltAxisKeysCellsByTilt) {
  core::ScenarioConfig base;
  base.group_drives = 4;
  base.mission_hours = 20000.0;
  base.ttop = {0.0, 4000.0, 1.2};
  base.ttr = {6.0, 100.0, 2.0};
  base.ttld = stats::WeibullParams{0.0, 2000.0, 1.0};
  base.ttscrub = stats::WeibullParams{6.0, 300.0, 3.0};
  sweep::SweepSpec spec("tilt-check", base);
  spec.add_op_tilt_axis({1.0, 2.0});

  const auto cells = spec.expand();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_DOUBLE_EQ(cells[0].scenario.op_tilt, 1.0);
  EXPECT_DOUBLE_EQ(cells[1].scenario.op_tilt, 2.0);
  // Same model, same digest — the tilt is an estimation knob.
  EXPECT_EQ(cells[0].config_digest, cells[1].config_digest);

  sweep::SweepOptions opt;
  opt.convergence.target_relative_sem = 1e-9;
  opt.convergence.batch_trials = 300;
  opt.convergence.min_trials = 300;
  opt.convergence.max_trials = 600;
  opt.convergence.seed = 42;
  opt.threads = 1;
  const auto result = sweep::SweepRunner(opt).run(spec);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_FALSE(result.cells[0].tilted());
  EXPECT_TRUE(result.cells[1].tilted());
  EXPECT_DOUBLE_EQ(result.cells[1].op_tilt, 2.0);
  EXPECT_GT(result.cells[1].ess, 0.0);
  // Equal digests but distinct cache keys: a tilted cell can never
  // satisfy an untilted cache lookup or vice versa.
  EXPECT_NE(result.cells[0].cell_key, result.cells[1].cell_key);
}

}  // namespace
}  // namespace raidrel::sim
