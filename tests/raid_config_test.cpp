#include "raid/group_config.h"

#include <gtest/gtest.h>

#include "stats/weibull.h"
#include "util/error.h"

namespace raidrel::raid {
namespace {

SlotModel paper_slot(bool latent = true, bool scrub = true) {
  SlotModel m;
  m.time_to_op_failure = std::make_unique<stats::Weibull>(0.0, 461386.0, 1.12);
  m.time_to_restore = std::make_unique<stats::Weibull>(6.0, 12.0, 2.0);
  if (latent) {
    m.time_to_latent_defect = std::make_unique<stats::Weibull>(0.0, 9259.0, 1.0);
  }
  if (scrub) {
    m.time_to_scrub = std::make_unique<stats::Weibull>(6.0, 168.0, 3.0);
  }
  return m;
}

TEST(SlotModel, FeatureFlags) {
  EXPECT_TRUE(paper_slot().latent_defects_enabled());
  EXPECT_TRUE(paper_slot().scrubbing_enabled());
  EXPECT_FALSE(paper_slot(false, false).latent_defects_enabled());
  EXPECT_FALSE(paper_slot(true, false).scrubbing_enabled());
}

TEST(SlotModel, CloneIsDeep) {
  const SlotModel m = paper_slot();
  const SlotModel c = m.clone();
  EXPECT_NE(c.time_to_op_failure.get(), m.time_to_op_failure.get());
  EXPECT_EQ(c.time_to_op_failure->describe(),
            m.time_to_op_failure->describe());
  EXPECT_NE(c.time_to_scrub.get(), m.time_to_scrub.get());
}

TEST(GroupConfig, UniformGroupShape) {
  const auto cfg = make_uniform_group(8, 1, paper_slot());
  EXPECT_EQ(cfg.total_drives(), 8u);
  EXPECT_EQ(cfg.data_drives(), 7u);
  EXPECT_DOUBLE_EQ(cfg.mission_hours, 87600.0);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(GroupConfig, Raid6Geometry) {
  const auto cfg = make_uniform_group(10, 2, paper_slot(), 50000.0);
  EXPECT_EQ(cfg.data_drives(), 8u);
  EXPECT_EQ(cfg.redundancy, 2u);
  EXPECT_DOUBLE_EQ(cfg.mission_hours, 50000.0);
}

TEST(GroupConfig, ValidationCatchesMistakes) {
  // Scrub without latent defects.
  auto bad = make_uniform_group(4, 1, paper_slot());
  bad.slots[0].time_to_latent_defect.reset();
  EXPECT_THROW(bad.validate(), ModelError);

  // Missing required laws.
  auto cfg = make_uniform_group(4, 1, paper_slot());
  cfg.slots[1].time_to_op_failure.reset();
  EXPECT_THROW(cfg.validate(), ModelError);

  // Redundancy >= drives.
  auto tiny = make_uniform_group(2, 1, paper_slot());
  tiny.redundancy = 2;
  EXPECT_THROW(tiny.validate(), ModelError);

  // Zero redundancy is not a RAID group.
  auto zero = make_uniform_group(4, 1, paper_slot());
  zero.redundancy = 0;
  EXPECT_THROW(zero.validate(), ModelError);
}

TEST(GroupConfig, CloneIsDeepAndValid) {
  const auto cfg = make_uniform_group(8, 1, paper_slot());
  const auto copy = cfg.clone();
  EXPECT_EQ(copy.total_drives(), 8u);
  EXPECT_NE(copy.slots[0].time_to_op_failure.get(),
            cfg.slots[0].time_to_op_failure.get());
  EXPECT_NO_THROW(copy.validate());
}

TEST(DdfKind, Names) {
  EXPECT_STREQ(to_string(DdfKind::kDoubleOperational), "double-operational");
  EXPECT_STREQ(to_string(DdfKind::kLatentThenOp), "latent-then-operational");
}

TEST(GroupConfig, HeterogeneousSlotsAllowed) {
  // Mixed vintages in one group: per-slot laws differ.
  auto cfg = make_uniform_group(4, 1, paper_slot());
  cfg.slots[2].time_to_op_failure =
      std::make_unique<stats::Weibull>(0.0, 1.2566e5, 1.2162);
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_NE(cfg.slots[2].time_to_op_failure->describe(),
            cfg.slots[0].time_to_op_failure->describe());
}

}  // namespace
}  // namespace raidrel::raid
