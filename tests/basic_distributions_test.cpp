#include "stats/basic_distributions.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/math.h"

namespace raidrel::stats {
namespace {

// ----------------------------------------------------------------- Exponential

TEST(Exponential, BasicLaws) {
  const Exponential e(0.01);
  EXPECT_NEAR(e.cdf(100.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(e.survival(100.0), std::exp(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(e.hazard(3.0), 0.01);
  EXPECT_DOUBLE_EQ(e.mean(), 100.0);
  EXPECT_DOUBLE_EQ(e.variance(), 10000.0);
  EXPECT_NEAR(e.quantile(0.5), 100.0 * std::log(2.0), 1e-10);
}

TEST(Exponential, MemorylessResidual) {
  const Exponential e(0.02);
  rng::RandomStream rs(1);
  util::RunningStats fresh, aged;
  for (int i = 0; i < 100000; ++i) {
    fresh.add(e.sample(rs));
    aged.add(e.sample_residual(1234.0, rs));
  }
  EXPECT_NEAR(fresh.mean(), 50.0, 0.7);
  EXPECT_NEAR(aged.mean(), 50.0, 0.7);
}

TEST(Exponential, RejectsBadRate) {
  EXPECT_THROW(Exponential(0.0), ModelError);
  EXPECT_THROW(Exponential(-1.0), ModelError);
}

// ------------------------------------------------------------------ LogNormal

TEST(LogNormal, MedianAndMoments) {
  const LogNormal ln(2.0, 0.5);
  EXPECT_NEAR(ln.quantile(0.5), std::exp(2.0), 1e-8);
  EXPECT_NEAR(ln.mean(), std::exp(2.0 + 0.125), 1e-9);
  const double s2 = 0.25;
  EXPECT_NEAR(ln.variance(), (std::exp(s2) - 1.0) * std::exp(4.0 + s2),
              1e-9);
}

TEST(LogNormal, CdfQuantileRoundTrip) {
  const LogNormal ln(0.0, 1.0);
  for (double p : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    EXPECT_NEAR(ln.cdf(ln.quantile(p)), p, 1e-10) << p;
  }
}

TEST(LogNormal, SampleMomentsMatch) {
  const LogNormal ln(1.0, 0.3);
  rng::RandomStream rs(9);
  util::RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(ln.sample(rs));
  EXPECT_NEAR(stats.mean(), ln.mean(), 0.02);
}

TEST(LogNormal, PdfIntegratesToOne) {
  const LogNormal ln(0.5, 0.8);
  const double total = util::integrate([&](double t) { return ln.pdf(t); },
                                       0.0, ln.quantile(0.99999), 1e-10);
  EXPECT_NEAR(total, 1.0, 1e-4);
}

// ---------------------------------------------------------------------- Gamma

TEST(Gamma, ShapeOneIsExponential) {
  const Gamma g(1.0, 50.0);
  const Exponential e(0.02);
  for (double t : {1.0, 10.0, 100.0}) {
    EXPECT_NEAR(g.cdf(t), e.cdf(t), 1e-10) << t;
    EXPECT_NEAR(g.pdf(t), e.pdf(t), 1e-10) << t;
  }
}

TEST(Gamma, MomentsAnalytic) {
  const Gamma g(3.0, 2.0);
  EXPECT_DOUBLE_EQ(g.mean(), 6.0);
  EXPECT_DOUBLE_EQ(g.variance(), 12.0);
}

TEST(Gamma, QuantileInvertsCdf) {
  for (double shape : {0.5, 1.0, 2.5, 10.0}) {
    const Gamma g(shape, 3.0);
    for (double p : {0.01, 0.3, 0.5, 0.9, 0.999}) {
      EXPECT_NEAR(g.cdf(g.quantile(p)), p, 1e-8)
          << "shape=" << shape << " p=" << p;
    }
  }
}

TEST(Gamma, SamplerMatchesMoments) {
  for (double shape : {0.5, 2.0, 7.5}) {
    const Gamma g(shape, 4.0);
    rng::RandomStream rs(static_cast<std::uint64_t>(shape * 100));
    util::RunningStats stats;
    for (int i = 0; i < 100000; ++i) stats.add(g.sample(rs));
    EXPECT_NEAR(stats.mean(), g.mean(), 0.15) << shape;
    EXPECT_NEAR(stats.variance(), g.variance(), g.variance() * 0.05) << shape;
  }
}

TEST(Gamma, SumOfExponentialsIsGamma) {
  // Property: sum of k iid Exp(rate) ~ Gamma(k, 1/rate).
  rng::RandomStream rs(33);
  const Exponential e(0.1);
  std::vector<double> sums;
  for (int i = 0; i < 20000; ++i) {
    double s = 0.0;
    for (int k = 0; k < 4; ++k) s += e.sample(rs);
    sums.push_back(s);
  }
  const Gamma g(4.0, 10.0);
  util::RunningStats stats;
  for (double s : sums) stats.add(s);
  EXPECT_NEAR(stats.mean(), g.mean(), 0.5);
  EXPECT_NEAR(stats.variance(), g.variance(), g.variance() * 0.06);
}

// -------------------------------------------------------------------- Uniform

TEST(Uniform, BasicLaws) {
  const Uniform u(2.0, 6.0);
  EXPECT_DOUBLE_EQ(u.cdf(1.0), 0.0);
  EXPECT_DOUBLE_EQ(u.cdf(4.0), 0.5);
  EXPECT_DOUBLE_EQ(u.cdf(7.0), 1.0);
  EXPECT_DOUBLE_EQ(u.pdf(3.0), 0.25);
  EXPECT_DOUBLE_EQ(u.pdf(8.0), 0.0);
  EXPECT_DOUBLE_EQ(u.mean(), 4.0);
  EXPECT_NEAR(u.variance(), 16.0 / 12.0, 1e-12);
  EXPECT_DOUBLE_EQ(u.quantile(0.25), 3.0);
}

TEST(Uniform, SamplesInRange) {
  const Uniform u(5.0, 10.0);
  rng::RandomStream rs(2);
  for (int i = 0; i < 10000; ++i) {
    const double x = u.sample(rs);
    EXPECT_GE(x, 5.0);
    EXPECT_LT(x, 10.0);
  }
}

TEST(Uniform, RejectsBadBounds) {
  EXPECT_THROW(Uniform(5.0, 5.0), ModelError);
  EXPECT_THROW(Uniform(-1.0, 5.0), ModelError);
}

// ----------------------------------------------------------------- Degenerate

TEST(Degenerate, PointMassBehaviour) {
  const Degenerate d(12.0);
  EXPECT_DOUBLE_EQ(d.cdf(11.9), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(12.0), 1.0);
  EXPECT_DOUBLE_EQ(d.mean(), 12.0);
  EXPECT_DOUBLE_EQ(d.variance(), 0.0);
  rng::RandomStream rs(3);
  EXPECT_DOUBLE_EQ(d.sample(rs), 12.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.3), 12.0);
}

TEST(Degenerate, ResidualCountsDown) {
  const Degenerate d(12.0);
  rng::RandomStream rs(4);
  EXPECT_DOUBLE_EQ(d.sample_residual(4.0, rs), 8.0);
  EXPECT_DOUBLE_EQ(d.sample_residual(12.0, rs), 0.0);
  EXPECT_DOUBLE_EQ(d.sample_residual(20.0, rs), 0.0);
}

// ---------------------------------------------------------------- polymorphism

TEST(DistributionPtr, ClonePreservesConcreteBehaviour) {
  std::vector<DistributionPtr> dists;
  dists.push_back(std::make_unique<Exponential>(0.5));
  dists.push_back(std::make_unique<LogNormal>(1.0, 0.5));
  dists.push_back(std::make_unique<Gamma>(2.0, 3.0));
  dists.push_back(std::make_unique<Uniform>(1.0, 2.0));
  dists.push_back(std::make_unique<Degenerate>(5.0));
  for (const auto& d : dists) {
    const auto c = d->clone();
    for (double t : {0.5, 1.5, 4.0}) {
      EXPECT_DOUBLE_EQ(c->cdf(t), d->cdf(t)) << d->describe();
    }
  }
}

}  // namespace
}  // namespace raidrel::stats
