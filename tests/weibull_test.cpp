#include "stats/weibull.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/math.h"

namespace raidrel::stats {
namespace {

TEST(Weibull, RejectsBadParameters) {
  EXPECT_THROW(Weibull(0.0, 0.0, 1.0), ModelError);
  EXPECT_THROW(Weibull(0.0, 1.0, 0.0), ModelError);
  EXPECT_THROW(Weibull(-1.0, 1.0, 1.0), ModelError);
}

TEST(Weibull, Beta1IsExponential) {
  const Weibull w(0.0, 100.0, 1.0);
  EXPECT_NEAR(w.cdf(100.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(w.hazard(5.0), 0.01, 1e-12);
  EXPECT_NEAR(w.hazard(500.0), 0.01, 1e-12);  // constant hazard
  EXPECT_NEAR(w.mean(), 100.0, 1e-9);
}

TEST(Weibull, CharacteristicLifeIs63rdPercentile) {
  for (double beta : {0.5, 1.0, 1.12, 2.0, 3.0}) {
    const Weibull w(0.0, 1000.0, beta);
    EXPECT_NEAR(w.cdf(1000.0), 1.0 - std::exp(-1.0), 1e-12) << beta;
  }
}

TEST(Weibull, LocationShiftsSupport) {
  const Weibull w(6.0, 12.0, 2.0);  // the paper's restore law
  EXPECT_DOUBLE_EQ(w.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.cdf(6.0), 0.0);
  EXPECT_DOUBLE_EQ(w.survival(5.9), 1.0);
  EXPECT_GT(w.cdf(6.1), 0.0);
  EXPECT_NEAR(w.cdf(18.0), 1.0 - std::exp(-1.0), 1e-12);  // gamma + eta
}

TEST(Weibull, QuantileInvertsCdf) {
  const Weibull w(6.0, 168.0, 3.0);  // the paper's scrub law
  for (double p : {0.001, 0.1, 0.5, 0.632, 0.9, 0.999}) {
    EXPECT_NEAR(w.cdf(w.quantile(p)), p, 1e-10) << p;
  }
  EXPECT_DOUBLE_EQ(w.quantile(0.0), 6.0);
}

TEST(Weibull, MeanMatchesGammaFormula) {
  const Weibull w(0.0, 461386.0, 1.12);  // the paper's TTOp
  EXPECT_NEAR(w.mean(), 461386.0 * util::gamma_fn(1.0 + 1.0 / 1.12), 1e-6);
  // beta = 2 (Rayleigh): mean = eta*sqrt(pi)/2.
  const Weibull r(0.0, 10.0, 2.0);
  EXPECT_NEAR(r.mean(), 10.0 * std::sqrt(M_PI) / 2.0, 1e-9);
}

TEST(Weibull, VarianceMatchesGammaFormula) {
  const Weibull w(0.0, 10.0, 2.0);
  const double g1 = util::gamma_fn(1.5);
  const double g2 = util::gamma_fn(2.0);
  EXPECT_NEAR(w.variance(), 100.0 * (g2 - g1 * g1), 1e-9);
  // Location does not change the variance.
  const Weibull s(50.0, 10.0, 2.0);
  EXPECT_NEAR(s.variance(), w.variance(), 1e-9);
  EXPECT_NEAR(s.mean(), w.mean() + 50.0, 1e-9);
}

TEST(Weibull, HazardMonotonicityByShape) {
  const Weibull decreasing(0.0, 100.0, 0.8);
  EXPECT_GT(decreasing.hazard(1.0), decreasing.hazard(10.0));
  EXPECT_GT(decreasing.hazard(10.0), decreasing.hazard(100.0));

  const Weibull increasing(0.0, 100.0, 1.4);
  EXPECT_LT(increasing.hazard(1.0), increasing.hazard(10.0));
  EXPECT_LT(increasing.hazard(10.0), increasing.hazard(100.0));
}

TEST(Weibull, CumHazardConsistentWithSurvival) {
  const Weibull w(5.0, 50.0, 1.7);
  for (double t : {6.0, 20.0, 55.0, 200.0}) {
    EXPECT_NEAR(std::exp(-w.cum_hazard(t)), w.survival(t), 1e-12) << t;
  }
  EXPECT_DOUBLE_EQ(w.cum_hazard(5.0), 0.0);
}

TEST(Weibull, PdfIntegratesToCdf) {
  const Weibull w(2.0, 30.0, 2.5);
  const double integral =
      util::integrate([&](double t) { return w.pdf(t); }, 0.0, 60.0, 1e-12);
  EXPECT_NEAR(integral, w.cdf(60.0), 1e-8);
}

TEST(Weibull, PdfAtLocationEdge) {
  EXPECT_TRUE(std::isinf(Weibull(0.0, 10.0, 0.5).pdf(0.0)));
  EXPECT_DOUBLE_EQ(Weibull(0.0, 10.0, 1.0).pdf(0.0), 0.1);
  EXPECT_DOUBLE_EQ(Weibull(0.0, 10.0, 2.0).pdf(0.0), 0.0);
}

TEST(Weibull, SampleMomentsMatchAnalytic) {
  const Weibull w(6.0, 12.0, 2.0);
  rng::RandomStream rs(2024);
  util::RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(w.sample(rs));
  EXPECT_NEAR(stats.mean(), w.mean(), 0.05);
  EXPECT_NEAR(stats.variance(), w.variance(), 0.3);
  EXPECT_GE(stats.min(), 6.0);  // location parameter respected
}

TEST(Weibull, SampleResidualMatchesConditionalLaw) {
  // For exponential (beta=1) the residual is the original law (memoryless).
  const Weibull expo(0.0, 100.0, 1.0);
  rng::RandomStream rs(5);
  util::RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(expo.sample_residual(500.0, rs));
  EXPECT_NEAR(stats.mean(), 100.0, 1.5);
}

TEST(Weibull, SampleResidualIncreasingHazardShortensLife) {
  const Weibull w(0.0, 100.0, 3.0);
  rng::RandomStream rs(6);
  util::RunningStats young, old;
  for (int i = 0; i < 50000; ++i) {
    young.add(w.sample_residual(0.0, rs));
    old.add(w.sample_residual(90.0, rs));
  }
  EXPECT_GT(young.mean(), old.mean());
  // Residual at age 0 is just the law itself.
  EXPECT_NEAR(young.mean(), w.mean(), 1.0);
}

TEST(Weibull, SampleResidualExtremeAgeStaysPositive) {
  // age >> eta: the accumulated hazard h0 = (age/eta)^beta ~ 1e20 dwarfs
  // the fresh Exp(1) draw. The old absolute-time form pow(h0 + e, 1/beta)
  // absorbed e entirely (h0 + e == h0 in doubles) and every residual
  // collapsed to exactly 0; the log-space increment keeps the draw. For
  // beta = 2 the residual is ~ eta^2/(beta*age) * e = 5e-9 * e.
  const Weibull w(0.0, 100.0, 2.0);
  rng::RandomStream rs(13);
  util::RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    const double r = w.sample_residual(1e12, rs);
    ASSERT_GT(r, 0.0) << i;
    ASSERT_TRUE(std::isfinite(r)) << i;
    stats.add(r);
  }
  EXPECT_NEAR(stats.mean(), 5e-9, 5e-10);

  // Increasing hazard: the extreme-age residual sits far below a
  // moderate-age one, not at a rounded-to-zero floor.
  rng::RandomStream rs2(14);
  util::RunningStats moderate;
  for (int i = 0; i < 20000; ++i) moderate.add(w.sample_residual(1e6, rs2));
  EXPECT_GT(moderate.mean(), stats.mean() * 1e3);
}

TEST(Weibull, SampleResidualBeforeLocation) {
  // Age below gamma: the drive cannot have failed; residual = (gamma - age)
  // + fresh draw beyond gamma.
  const Weibull w(10.0, 5.0, 2.0);
  rng::RandomStream rs(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(w.sample_residual(3.0, rs), 7.0);
  }
}

TEST(Weibull, TwoParamFactoryAndStddev) {
  const Weibull w = Weibull::two_param(100.0, 2.0);
  EXPECT_DOUBLE_EQ(w.location(), 0.0);
  EXPECT_DOUBLE_EQ(w.scale(), 100.0);
  EXPECT_NEAR(w.stddev(), std::sqrt(w.variance()), 1e-12);
}

TEST(Weibull, ExponentialEquivalentFactory) {
  const Weibull w = Weibull::exponential_equivalent(0.01);
  EXPECT_DOUBLE_EQ(w.shape(), 1.0);
  EXPECT_DOUBLE_EQ(w.scale(), 100.0);
  EXPECT_THROW(Weibull::exponential_equivalent(0.0), ModelError);
}

TEST(Weibull, CloneIsIndependentAndEqual) {
  const Weibull w(1.0, 2.0, 3.0);
  const auto c = w.clone();
  EXPECT_NEAR(c->cdf(2.5), w.cdf(2.5), 0.0);
  EXPECT_EQ(c->describe(), w.describe());
}

TEST(Weibull, DescribeListsParameters) {
  const Weibull w(6.0, 12.0, 2.0);
  const std::string d = w.describe();
  EXPECT_NE(d.find("gamma=6"), std::string::npos);
  EXPECT_NE(d.find("eta=12"), std::string::npos);
  EXPECT_NE(d.find("beta=2"), std::string::npos);
}

TEST(Weibull, QuantileRejectsOutOfRange) {
  const Weibull w(0.0, 1.0, 1.0);
  EXPECT_THROW(static_cast<void>(w.quantile(1.0)), ModelError);
  EXPECT_THROW(static_cast<void>(w.quantile(-0.1)), ModelError);
}

}  // namespace
}  // namespace raidrel::stats
