// MathTier::kFast (sim/lane_ops.h) trades the exact tier's bit-identity
// for polynomial SIMD transforms. Its contract has three legs, each
// pinned here:
//
//  1. per-sample accuracy — every fast draw is within 1e-12 relative of
//     the exact draw made from the same uniform (the kernels target
//     ~1e-15; the margin absorbs argument-range variation);
//  2. determinism — the fast kernels produce the *same bits* at every
//     backend (generic scalar included) and every lane width, because
//     they evaluate a fixed operation order with contraction disabled.
//     kFast is a different arithmetic, not a looser one;
//  3. statistical equivalence — a fast-tier run of a failure-heavy
//     model reproduces the exact tier's event totals to well within
//     Monte Carlo noise.
//
// The default everywhere stays kExact; that default is asserted last.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/presets.h"
#include "sim/batch_engine.h"
#include "sim/convergence.h"
#include "sim/lane_ops.h"
#include "sim/runner.h"
#include "stats/weibull.h"
#include "util/cpu_features.h"

namespace raidrel::sim {
namespace {

constexpr std::uint64_t kSeed = 20070625;

raid::GroupConfig busy_group(double mission = 20000.0) {
  raid::SlotModel m;
  m.time_to_op_failure = std::make_unique<stats::Weibull>(0.0, 4000.0, 1.2);
  m.time_to_restore = std::make_unique<stats::Weibull>(6.0, 100.0, 2.0);
  m.time_to_latent_defect =
      std::make_unique<stats::Weibull>(0.0, 2000.0, 1.0);
  m.time_to_scrub = std::make_unique<stats::Weibull>(6.0, 300.0, 3.0);
  return raid::make_uniform_group(8, 1, m, mission);
}

std::vector<double> test_uniforms(std::size_t n) {
  rng::StreamFactory factory(kSeed);
  auto rs = factory.stream(0);
  std::vector<double> u(n);
  for (auto& x : u) x = rs.uniform_open();
  // Pin the extremes of the achievable range too.
  if (n >= 2) {
    u[0] = 0x1.0p-53 + 0x1.0p-54;  // smallest uniform_open output
    u[1] = 1.0 - 0x1.0p-53;        // largest
  }
  return u;
}

TEST(MathTier, FastNegLogMatchesLibmTo1e12) {
  const LaneOps& ops = lane_ops();
  const auto u = test_uniforms(1001);  // odd length: SIMD blocks + tail
  std::vector<double> fast(u.size());
  ops.neg_log_n(u.data(), fast.data(), u.size());
  for (std::size_t i = 0; i < u.size(); ++i) {
    const double exact = -std::log(u[i]);
    EXPECT_NEAR(fast[i], exact, std::abs(exact) * 1e-12 + 1e-300)
        << "u=" << u[i];
  }
}

TEST(MathTier, FastWeibullQuantileMatchesLibmTo1e12) {
  const LaneOps& ops = lane_ops();
  const auto u = test_uniforms(517);
  std::vector<double> e(u.size());
  for (std::size_t i = 0; i < u.size(); ++i) e[i] = -std::log(u[i]);
  // Base-case-like shapes: gamma/eta/beta spanning the model's range.
  const struct { double a, b, c; } params[] = {
      {0.0, 4000.0, 1.0 / 1.2}, {6.0, 100.0, 1.0 / 2.0},
      {6.0, 300.0, 1.0 / 3.0},  {0.0, 461386.0, 1.0}};
  for (const auto& p : params) {
    std::vector<double> fast(e.size());
    ops.weibull_quantile_n(e.data(), fast.data(), e.size(), p.a, p.b, p.c);
    for (std::size_t i = 0; i < e.size(); ++i) {
      const double exact = p.a + p.b * std::pow(e[i], p.c);
      EXPECT_NEAR(fast[i], exact, std::abs(exact) * 1e-12)
          << "e=" << e[i] << " beta=" << 1.0 / p.c;
    }
  }
}

TEST(MathTier, FastKernelsAreBitIdenticalAcrossBackends) {
  const auto u = test_uniforms(333);
  const LaneOps& reference = lane_ops_for(util::SimdIsa::kGeneric);
  std::vector<double> ref_log(u.size()), ref_wq(u.size());
  reference.neg_log_n(u.data(), ref_log.data(), u.size());
  reference.weibull_quantile_n(ref_log.data(), ref_wq.data(), u.size(), 6.0,
                               300.0, 1.0 / 3.0);
  for (util::SimdIsa isa : {util::SimdIsa::kSse2, util::SimdIsa::kAvx2,
                            util::SimdIsa::kAvx512}) {
    if (isa > util::detected_isa()) continue;
    const LaneOps& ops = lane_ops_for(isa);
    std::vector<double> got_log(u.size()), got_wq(u.size());
    ops.neg_log_n(u.data(), got_log.data(), u.size());
    ops.weibull_quantile_n(got_log.data(), got_wq.data(), u.size(), 6.0,
                           300.0, 1.0 / 3.0);
    for (std::size_t i = 0; i < u.size(); ++i) {
      EXPECT_EQ(got_log[i], ref_log[i]) << util::isa_name(isa) << " i=" << i;
      EXPECT_EQ(got_wq[i], ref_wq[i]) << util::isa_name(isa) << " i=" << i;
    }
  }
}

std::vector<TrialResult> fast_batch_trials(const raid::GroupConfig& cfg,
                                           std::size_t n,
                                           std::size_t width) {
  const rng::StreamFactory streams(kSeed);
  BatchGroupSimulator simulator(cfg, width, KernelPolicy::kLowered,
                                std::nullopt, MathTier::kFast);
  std::vector<TrialResult> out;
  out.reserve(n);
  for (std::size_t begin = 0; begin < n; begin += width) {
    const std::size_t count = std::min(width, n - begin);
    simulator.run_lane(streams, begin, count);
    for (std::size_t w = 0; w < count; ++w) {
      out.push_back(simulator.result(w));
    }
  }
  return out;
}

TEST(MathTier, FastTierIsWidthInvariant) {
  // kFast gives up bit-comparability with kExact, NOT with itself: the
  // same trial draws the same lifetimes at any lane width.
  const auto cfg = busy_group();
  constexpr std::size_t kTrials = 96;
  const auto narrow = fast_batch_trials(cfg, kTrials, 4);
  const auto wide = fast_batch_trials(cfg, kTrials, 32);
  ASSERT_EQ(narrow.size(), wide.size());
  for (std::size_t i = 0; i < kTrials; ++i) {
    EXPECT_EQ(narrow[i].op_failures, wide[i].op_failures) << i;
    EXPECT_EQ(narrow[i].latent_defects, wide[i].latent_defects) << i;
    ASSERT_EQ(narrow[i].ddfs.size(), wide[i].ddfs.size()) << i;
    for (std::size_t d = 0; d < narrow[i].ddfs.size(); ++d) {
      EXPECT_EQ(narrow[i].ddfs[d].time, wide[i].ddfs[d].time) << i;
    }
  }
}

TEST(MathTier, FastRunIsStatisticallyEquivalentToExact) {
  // Distribution-level validation of the fast tier: simulate a
  // failure-heavy group at both tiers with the same seeds and compare
  // aggregate event totals. A 1e-12 per-draw perturbation occasionally
  // flips an event-order race, so totals differ slightly — but far
  // inside sampling noise. With ~4000 trials the totals are ~1e5
  // events; 2% bounds are many standard deviations wide while still
  // catching any real distributional change (a wrong polynomial or a
  // mis-ranged reduction shifts means by far more).
  const auto cfg = busy_group();
  constexpr std::size_t kTrials = 4096;
  const rng::StreamFactory streams(kSeed);
  std::uint64_t ops[2] = {0, 0}, latents[2] = {0, 0}, ddfs[2] = {0, 0};
  const MathTier tiers[2] = {MathTier::kExact, MathTier::kFast};
  for (int t = 0; t < 2; ++t) {
    BatchGroupSimulator simulator(cfg, kDefaultBatchWidth,
                                  KernelPolicy::kLowered, std::nullopt,
                                  tiers[t]);
    for (std::size_t begin = 0; begin < kTrials;
         begin += kDefaultBatchWidth) {
      simulator.run_lane(streams, begin, kDefaultBatchWidth);
      for (std::size_t w = 0; w < kDefaultBatchWidth; ++w) {
        ops[t] += simulator.result(w).op_failures;
        latents[t] += simulator.result(w).latent_defects;
        ddfs[t] += simulator.result(w).ddfs.size();
      }
    }
  }
  ASSERT_GT(ops[0], 10000u);  // the model really is failure-heavy
  EXPECT_NEAR(static_cast<double>(ops[1]), static_cast<double>(ops[0]),
              0.02 * static_cast<double>(ops[0]));
  EXPECT_NEAR(static_cast<double>(latents[1]),
              static_cast<double>(latents[0]),
              0.02 * static_cast<double>(latents[0]));
  // DDFs are rarer; allow a wider relative band plus an absolute floor.
  EXPECT_NEAR(static_cast<double>(ddfs[1]), static_cast<double>(ddfs[0]),
              0.08 * static_cast<double>(ddfs[0]) + 8.0);
}

TEST(MathTier, DefaultsStayExactEverywhere) {
  EXPECT_EQ(RunOptions{}.math_tier, MathTier::kExact);
  EXPECT_EQ(ConvergenceOptions{}.math_tier, MathTier::kExact);
}

}  // namespace
}  // namespace raidrel::sim
