// Runtime ISA detection and the RAIDREL_FORCE_ISA override
// (util/cpu_features.h). The override is the lever the CI matrix pulls
// to run every SIMD backend on one machine, so its contract is pinned
// here: names round-trip, forcing clamps *down* but never up, a typo
// throws instead of silently running the wrong backend, and
// active_isa() re-reads the environment so tests can flip it around
// engine construction.
#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/lane_ops.h"
#include "util/cpu_features.h"
#include "util/error.h"

namespace raidrel::util {
namespace {

/// RAII environment override so a failing assertion cannot leak the
/// variable into later tests.
class ScopedForceIsa {
 public:
  explicit ScopedForceIsa(const char* value) {
    ::setenv("RAIDREL_FORCE_ISA", value, 1);
  }
  ~ScopedForceIsa() { ::unsetenv("RAIDREL_FORCE_ISA"); }
};

TEST(CpuFeatures, NamesRoundTripThroughParse) {
  for (SimdIsa isa : {SimdIsa::kGeneric, SimdIsa::kSse2, SimdIsa::kAvx2,
                      SimdIsa::kAvx512}) {
    const auto parsed = parse_isa(isa_name(isa));
    ASSERT_TRUE(parsed.has_value()) << isa_name(isa);
    EXPECT_EQ(*parsed, isa);
  }
}

TEST(CpuFeatures, ParseRejectsUnknownSpellings) {
  EXPECT_FALSE(parse_isa("").has_value());
  EXPECT_FALSE(parse_isa("AVX2").has_value());  // canonical is lower-case
  EXPECT_FALSE(parse_isa("avx-512").has_value());
  EXPECT_FALSE(parse_isa("sse42").has_value());
}

TEST(CpuFeatures, DetectedIsaIsAtLeastTheBaseline) {
  // On x86-64 SSE2 is architectural; elsewhere kGeneric is still valid.
#if defined(__x86_64__) || defined(_M_X64)
  EXPECT_GE(detected_isa(), SimdIsa::kSse2);
#else
  EXPECT_GE(detected_isa(), SimdIsa::kGeneric);
#endif
}

TEST(CpuFeatures, ResolveClampsDownwardOnly) {
  // Forcing below the detected tier is honored exactly...
  EXPECT_EQ(resolve_isa(SimdIsa::kAvx512, "sse2"), SimdIsa::kSse2);
  EXPECT_EQ(resolve_isa(SimdIsa::kAvx2, "generic"), SimdIsa::kGeneric);
  // ...forcing above it clamps to the hardware (running wider would be
  // an illegal instruction, not a test of anything).
  EXPECT_EQ(resolve_isa(SimdIsa::kSse2, "avx512"), SimdIsa::kSse2);
  EXPECT_EQ(resolve_isa(SimdIsa::kGeneric, "avx2"), SimdIsa::kGeneric);
  // Empty/absent override keeps the detected tier.
  EXPECT_EQ(resolve_isa(SimdIsa::kAvx2, ""), SimdIsa::kAvx2);
}

TEST(CpuFeatures, ResolveThrowsOnUnparseableToken) {
  EXPECT_THROW(resolve_isa(SimdIsa::kAvx512, "avx1024"), ModelError);
  EXPECT_THROW(resolve_isa(SimdIsa::kSse2, "SSE2"), ModelError);
}

TEST(CpuFeatures, ActiveIsaFollowsTheEnvironment) {
  const SimdIsa detected = detected_isa();
  EXPECT_EQ(active_isa(), detected);  // no override in a clean env
  {
    ScopedForceIsa force("generic");
    EXPECT_EQ(active_isa(), SimdIsa::kGeneric);
  }
  EXPECT_EQ(active_isa(), detected);  // re-read after unsetenv
}

TEST(CpuFeatures, LaneOpsTableMatchesForcedIsa) {
  // The engine-facing dispatch (sim::lane_ops) resolves through
  // active_isa(), so forcing the environment must swap the table.
  for (SimdIsa isa : {SimdIsa::kGeneric, SimdIsa::kSse2, SimdIsa::kAvx2,
                      SimdIsa::kAvx512}) {
    if (isa > detected_isa()) continue;
    ScopedForceIsa force(isa_name(isa));
    EXPECT_EQ(sim::lane_ops().isa, isa) << isa_name(isa);
  }
}

TEST(CpuFeatures, LaneOpsForClampsLikeResolve) {
  const SimdIsa detected = detected_isa();
  EXPECT_EQ(sim::lane_ops_for(SimdIsa::kGeneric).isa, SimdIsa::kGeneric);
  // A request above the hardware degrades to the widest runnable tier.
  EXPECT_EQ(sim::lane_ops_for(SimdIsa::kAvx512).isa,
            detected < SimdIsa::kAvx512 ? detected : SimdIsa::kAvx512);
}

TEST(CpuFeatures, MathTierNamesRoundTrip) {
  using sim::MathTier;
  EXPECT_EQ(sim::parse_math_tier(sim::math_tier_name(MathTier::kExact)),
            MathTier::kExact);
  EXPECT_EQ(sim::parse_math_tier(sim::math_tier_name(MathTier::kFast)),
            MathTier::kFast);
  EXPECT_FALSE(sim::parse_math_tier("FAST").has_value());
  EXPECT_FALSE(sim::parse_math_tier("").has_value());
}

}  // namespace
}  // namespace raidrel::util
