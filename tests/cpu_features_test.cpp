// Runtime ISA detection and the RAIDREL_FORCE_ISA override
// (util/cpu_features.h). The override is the lever the CI matrix pulls
// to run every SIMD backend on one machine, so its contract is pinned
// here: names round-trip, forcing clamps *down* but never up, a typo
// throws instead of silently running the wrong backend, and
// active_isa() re-reads the environment so tests can flip it around
// engine construction.
#include <gtest/gtest.h>

#include <cstdlib>
#include <mutex>
#include <vector>

#include "sim/lane_ops.h"
#include "sim/thread_pool.h"
#include "util/cpu_features.h"
#include "util/error.h"

namespace raidrel::util {
namespace {

/// RAII environment override so a failing assertion cannot leak the
/// variable into later tests.
class ScopedForceIsa {
 public:
  explicit ScopedForceIsa(const char* value) {
    ::setenv("RAIDREL_FORCE_ISA", value, 1);
  }
  ~ScopedForceIsa() { ::unsetenv("RAIDREL_FORCE_ISA"); }
};

TEST(CpuFeatures, NamesRoundTripThroughParse) {
  for (SimdIsa isa : {SimdIsa::kGeneric, SimdIsa::kSse2, SimdIsa::kAvx2,
                      SimdIsa::kAvx512}) {
    const auto parsed = parse_isa(isa_name(isa));
    ASSERT_TRUE(parsed.has_value()) << isa_name(isa);
    EXPECT_EQ(*parsed, isa);
  }
}

TEST(CpuFeatures, ParseRejectsUnknownSpellings) {
  EXPECT_FALSE(parse_isa("").has_value());
  EXPECT_FALSE(parse_isa("AVX2").has_value());  // canonical is lower-case
  EXPECT_FALSE(parse_isa("avx-512").has_value());
  EXPECT_FALSE(parse_isa("sse42").has_value());
}

TEST(CpuFeatures, DetectedIsaIsAtLeastTheBaseline) {
  // On x86-64 SSE2 is architectural; elsewhere kGeneric is still valid.
#if defined(__x86_64__) || defined(_M_X64)
  EXPECT_GE(detected_isa(), SimdIsa::kSse2);
#else
  EXPECT_GE(detected_isa(), SimdIsa::kGeneric);
#endif
}

TEST(CpuFeatures, ResolveClampsDownwardOnly) {
  // Forcing below the detected tier is honored exactly...
  EXPECT_EQ(resolve_isa(SimdIsa::kAvx512, "sse2"), SimdIsa::kSse2);
  EXPECT_EQ(resolve_isa(SimdIsa::kAvx2, "generic"), SimdIsa::kGeneric);
  // ...forcing above it clamps to the hardware (running wider would be
  // an illegal instruction, not a test of anything).
  EXPECT_EQ(resolve_isa(SimdIsa::kSse2, "avx512"), SimdIsa::kSse2);
  EXPECT_EQ(resolve_isa(SimdIsa::kGeneric, "avx2"), SimdIsa::kGeneric);
  // Empty/absent override keeps the detected tier.
  EXPECT_EQ(resolve_isa(SimdIsa::kAvx2, ""), SimdIsa::kAvx2);
}

TEST(CpuFeatures, ResolveThrowsOnUnparseableToken) {
  EXPECT_THROW(resolve_isa(SimdIsa::kAvx512, "avx1024"), ModelError);
  EXPECT_THROW(resolve_isa(SimdIsa::kSse2, "SSE2"), ModelError);
}

TEST(CpuFeatures, ActiveIsaFollowsTheEnvironment) {
  const SimdIsa detected = detected_isa();
  EXPECT_EQ(active_isa(), detected);  // no override in a clean env
  {
    ScopedForceIsa force("generic");
    EXPECT_EQ(active_isa(), SimdIsa::kGeneric);
  }
  EXPECT_EQ(active_isa(), detected);  // re-read after unsetenv
}

TEST(CpuFeatures, LaneOpsTableMatchesForcedIsa) {
  // The engine-facing dispatch (sim::lane_ops) resolves through
  // active_isa(), so forcing the environment must swap the table.
  for (SimdIsa isa : {SimdIsa::kGeneric, SimdIsa::kSse2, SimdIsa::kAvx2,
                      SimdIsa::kAvx512}) {
    if (isa > detected_isa()) continue;
    ScopedForceIsa force(isa_name(isa));
    EXPECT_EQ(sim::lane_ops().isa, isa) << isa_name(isa);
  }
}

TEST(CpuFeatures, LaneOpsForClampsLikeResolve) {
  const SimdIsa detected = detected_isa();
  EXPECT_EQ(sim::lane_ops_for(SimdIsa::kGeneric).isa, SimdIsa::kGeneric);
  // A request above the hardware degrades to the widest runnable tier.
  EXPECT_EQ(sim::lane_ops_for(SimdIsa::kAvx512).isa,
            detected < SimdIsa::kAvx512 ? detected : SimdIsa::kAvx512);
}

// ---- NUMA topology ------------------------------------------------------

/// Same RAII discipline for the node-count override.
class ScopedForceNodes {
 public:
  explicit ScopedForceNodes(const char* value) {
    ::setenv("RAIDREL_FORCE_NUMA_NODES", value, 1);
  }
  ~ScopedForceNodes() { ::unsetenv("RAIDREL_FORCE_NUMA_NODES"); }
};

TEST(CpuTopologyTest, ParseCpuListHandlesKernelFormat) {
  EXPECT_EQ(parse_cpu_list("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(parse_cpu_list("0-3,8,10-11"),
            (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(parse_cpu_list("7"), (std::vector<int>{7}));
  // The sysfs file ends in a newline; stray blanks are tolerated.
  EXPECT_EQ(parse_cpu_list("0-1\n"), (std::vector<int>{0, 1}));
  EXPECT_EQ(parse_cpu_list(" 2 , 4 "), (std::vector<int>{2, 4}));
  // Duplicates and overlapping ranges collapse, output stays sorted.
  EXPECT_EQ(parse_cpu_list("3,1,1-2"), (std::vector<int>{1, 2, 3}));
}

TEST(CpuTopologyTest, ParseCpuListSkipsMalformedSegments) {
  EXPECT_TRUE(parse_cpu_list("").empty());
  EXPECT_TRUE(parse_cpu_list("\n").empty());
  EXPECT_TRUE(parse_cpu_list("abc").empty());
  EXPECT_TRUE(parse_cpu_list("5-2").empty());   // descending range
  EXPECT_TRUE(parse_cpu_list("-3").empty());    // negative id
  // A bad segment never poisons its neighbors.
  EXPECT_EQ(parse_cpu_list("0,junk,2-2x,3"), (std::vector<int>{0, 3}));
}

TEST(CpuTopologyTest, DetectedTopologyHasAtLeastOneNodeWithCpus) {
  const CpuTopology& topo = detected_topology();
  ASSERT_GE(topo.node_count(), 1u);
  for (const NumaNode& node : topo.nodes) {
    EXPECT_GE(node.id, 0);
    EXPECT_FALSE(node.cpus.empty());
  }
}

TEST(CpuTopologyTest, ForcedNodesSplitIsSyntheticAndCoversAllCpus) {
  std::size_t detected_cpus = 0;
  for (const auto& node : detected_topology().nodes) {
    detected_cpus += node.cpus.size();
  }
  ScopedForceNodes force("3");
  const CpuTopology topo = active_topology();
  ASSERT_EQ(topo.node_count(), 3u);
  // Synthetic splits shape claim routing only; pinning threads to
  // made-up nodes would fight the OS scheduler (thread_pool.cpp).
  EXPECT_FALSE(topo.physical);
  std::size_t split_cpus = 0;
  for (const auto& node : topo.nodes) split_cpus += node.cpus.size();
  EXPECT_EQ(split_cpus, detected_cpus);
}

TEST(CpuTopologyTest, ActiveTopologyFollowsTheEnvironment) {
  const std::size_t detected_nodes = detected_topology().node_count();
  EXPECT_EQ(active_topology().node_count(), detected_nodes);
  {
    ScopedForceNodes force("5");
    EXPECT_EQ(active_topology().node_count(), 5u);
  }
  EXPECT_EQ(active_topology().node_count(), detected_nodes);
}

TEST(CpuTopologyTest, MalformedForcedNodesThrow) {
  for (const char* bad : {"0", "-2", "abc", "2.5", "3x", ""}) {
    SCOPED_TRACE(bad);
    ScopedForceNodes force(bad);
    if (*bad == '\0') {
      // Empty counts as absent, like the other RAIDREL_* overrides.
      EXPECT_EQ(active_topology().node_count(),
                detected_topology().node_count());
    } else {
      EXPECT_THROW(active_topology(), ModelError);
    }
  }
}

TEST(CpuTopologyTest, PoolWorkersGetHomeNodesUnderForcedSplit) {
  // A fresh pool spawned under a forced split assigns round-robin home
  // nodes (visible through current_worker_node) without pinning; the
  // coordinating thread itself is never assigned one.
  ScopedForceNodes force("2");
  sim::ThreadPool pool;
  std::mutex mu;
  std::vector<int> seen;
  pool.run(4, [&] {
    const std::lock_guard<std::mutex> lock(mu);
    seen.push_back(sim::ThreadPool::current_worker_node());
  });
  ASSERT_EQ(seen.size(), 4u);
  for (const int node : seen) {
    EXPECT_GE(node, 0);
    EXPECT_LT(node, 2);
  }
  EXPECT_EQ(sim::ThreadPool::current_worker_node(), -1);
}

TEST(CpuFeatures, MathTierNamesRoundTrip) {
  using sim::MathTier;
  EXPECT_EQ(sim::parse_math_tier(sim::math_tier_name(MathTier::kExact)),
            MathTier::kExact);
  EXPECT_EQ(sim::parse_math_tier(sim::math_tier_name(MathTier::kFast)),
            MathTier::kFast);
  EXPECT_FALSE(sim::parse_math_tier("FAST").has_value());
  EXPECT_FALSE(sim::parse_math_tier("").has_value());
}

}  // namespace
}  // namespace raidrel::util
