// The m-fault-tolerance generalization (docs/MODEL.md §15): the exact
// Poisson-binomial probe census against brute-force enumeration, and the
// declustered rebuild model's restore-time scaling — pinned by replaying
// traced event histories against a near-deterministic restore law, so
// every individual rebuild's duration can be checked against
// t_base * (n_data / n_surviving_sources) at its failure instant,
// including failures mid-rebuild, spare-pool starvation, and the
// copyback-free one-restore-per-failure contract.
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "analytic/latent_ddf.h"
#include "core/scenario.h"
#include "obs/trace.h"
#include "sim/group_simulator.h"
#include "sim/runner.h"
#include "sim/timing_engine.h"
#include "stats/weibull.h"
#include "util/error.h"
#include "util/math.h"

namespace raidrel::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---- Poisson-binomial census ------------------------------------------

double brute_force_tail(const std::vector<double>& p, unsigned at_least) {
  // Enumerate all 2^n outcomes of independent non-identical Bernoullis.
  const std::size_t n = p.size();
  double total = 0.0;
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    unsigned count = 0;
    double prob = 1.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (mask & (std::size_t{1} << j)) {
        prob *= p[j];
        ++count;
      } else {
        prob *= 1.0 - p[j];
      }
    }
    if (count >= at_least) total += prob;
  }
  return total;
}

TEST(PoissonBinomialTail, MatchesBruteForceEnumeration) {
  // Heterogeneous probabilities, every threshold, group-sized n.
  const std::vector<double> p = {0.02, 0.5, 0.13, 0.9, 0.004, 0.33, 0.71};
  std::vector<double> scratch(p.size() + 1);
  for (unsigned k = 0; k <= p.size() + 1; ++k) {
    EXPECT_NEAR(util::poisson_binomial_tail(p.data(), p.size(), k,
                                            scratch.data()),
                brute_force_tail(p, k), 1e-12)
        << "at_least " << k;
  }
}

TEST(PoissonBinomialTail, EdgeCases) {
  std::vector<double> scratch(4);
  const double p[] = {0.3, 0.6, 0.1};
  // at_least 0 is certain; beyond n is impossible; n == 0 degenerates.
  EXPECT_EQ(util::poisson_binomial_tail(p, 3, 0, scratch.data()), 1.0);
  EXPECT_EQ(util::poisson_binomial_tail(p, 3, 4, scratch.data()), 0.0);
  EXPECT_EQ(util::poisson_binomial_tail(nullptr, 0, 0, scratch.data()), 1.0);
  EXPECT_EQ(util::poisson_binomial_tail(nullptr, 0, 1, scratch.data()), 0.0);
}

TEST(PoissonBinomialTail, ReducesToBinomialForEqualProbabilities) {
  // With identical p the Poisson-binomial tail must equal the analytic
  // layer's binomial recurrence (analytic/latent_ddf.h) — the two census
  // formulas the engines and the closed form rely on.
  const double q = 0.17;
  const unsigned n = 9;
  std::vector<double> p(n, q);
  std::vector<double> scratch(n + 1);
  for (unsigned k = 0; k <= n; ++k) {
    EXPECT_NEAR(util::poisson_binomial_tail(p.data(), n, k, scratch.data()),
                analytic::at_least_k_of_n(q, n, k), 1e-12)
        << "at_least " << k;
  }
}

// ---- Declustered rebuild scaling --------------------------------------

// A group whose restore law is (near-)deterministic: Weibull with a tiny
// characteristic life degenerates to its location, so each rebuild's
// duration is known to ~1e-7 h and the declustered scale factor can be
// verified per event.
constexpr double kBaseRestore = 100.0;
constexpr unsigned kDrives = 8;
constexpr unsigned kRedundancy = 3;
constexpr unsigned kDataDrives = kDrives - kRedundancy;

raid::GroupConfig deterministic_restore_group(bool declustered,
                                              bool with_spare_pool) {
  raid::SlotModel m;
  // Short lifetimes force overlapping rebuilds within a trial.
  m.time_to_op_failure = std::make_unique<stats::Weibull>(0.0, 500.0, 1.0);
  m.time_to_restore =
      std::make_unique<stats::Weibull>(kBaseRestore, 1e-9, 1.0);
  auto cfg = raid::make_uniform_group(kDrives, kRedundancy, m, 20000.0);
  if (declustered) cfg.rebuild = raid::RebuildModel::kDeclustered;
  if (with_spare_pool) cfg.spare_pool = raid::SparePoolConfig{1, 150.0};
  return cfg;
}

/// Replays one trial's trace, maintaining the group's down/waiting state
/// and (when a spare pool is configured) the pool and FIFO queue, and
/// checks every completed rebuild's duration against the scale fixed at
/// its failure instant. Counters let tests assert the interesting regimes
/// actually occurred.
struct ReplayStats {
  std::size_t restores_checked = 0;
  std::size_t degraded_starts = 0;  ///< failures with another rebuild live
  std::size_t blocked_starts = 0;   ///< rebuilds that waited for a spare
  std::size_t speedups = 0;         ///< healthy-group scale < 1 observed
};

void replay_trial(const obs::TrialTrace& trace,
                  const raid::GroupConfig& cfg, ReplayStats& stats) {
  const bool declustered =
      cfg.rebuild == raid::RebuildModel::kDeclustered;
  struct SlotState {
    bool restoring = false;  ///< down, rebuilding or waiting for a spare
    double start = kInf;     ///< rebuild start (failure or spare arrival)
    double duration = 0.0;   ///< expected duration, fixed at failure
  };
  std::vector<SlotState> slots(cfg.slots.size());
  unsigned spares = cfg.spare_pool ? cfg.spare_pool->capacity : 0;
  std::deque<std::size_t> waiting;

  for (const obs::TraceEvent& e : trace.events()) {
    switch (e.kind) {
      case obs::TraceEventKind::kOpFailure: {
        SlotState& s = slots[e.slot];
        // Copyback-free contract: one failure, one rebuild — a slot can
        // only fail while operational.
        ASSERT_FALSE(s.restoring) << "slot " << e.slot << " failed while "
                                  << "already rebuilding at t=" << e.time;
        unsigned sources = 0;
        for (std::size_t j = 0; j < slots.size(); ++j) {
          if (j != e.slot && !slots[j].restoring) ++sources;
        }
        if (sources < cfg.slots.size() - 1) ++stats.degraded_starts;
        const double scale =
            declustered ? static_cast<double>(kDataDrives) /
                              static_cast<double>(std::max(1u, sources))
                        : 1.0;
        s.restoring = true;
        s.duration = kBaseRestore * scale;
        if (scale < 1.0) ++stats.speedups;
        if (cfg.spare_pool) {
          if (spares > 0) {
            --spares;
            s.start = e.time;
          } else {
            s.start = kInf;  // starts at the next spare arrival
            waiting.push_back(e.slot);
            ++stats.blocked_starts;
          }
        } else {
          s.start = e.time;
        }
        break;
      }
      case obs::TraceEventKind::kSpareArrival: {
        if (!waiting.empty()) {
          const std::size_t slot = waiting.front();
          waiting.pop_front();
          slots[slot].start = e.time;
        } else {
          ++spares;
        }
        break;
      }
      case obs::TraceEventKind::kRestoreDone: {
        SlotState& s = slots[e.slot];
        ASSERT_TRUE(s.restoring) << "slot " << e.slot
                                 << " restored without failing";
        ASSERT_LT(s.start, kInf) << "slot " << e.slot
                                 << " restored while waiting for a spare";
        // The duration fixed at the failure instant is what elapsed —
        // regardless of failures or spare waits in between.
        EXPECT_NEAR(e.time - s.start, s.duration, 1e-3)
            << "slot " << e.slot << " done at t=" << e.time;
        s = SlotState{};
        ++stats.restores_checked;
        break;
      }
      default:
        break;
    }
  }
}

ReplayStats replay_trials(const raid::GroupConfig& cfg, std::size_t trials,
                          std::uint64_t seed) {
  GroupSimulator engine(cfg);
  rng::StreamFactory streams(seed);
  TrialResult out;
  obs::TrialTrace trace(8192);
  ReplayStats stats;
  for (std::size_t i = 0; i < trials; ++i) {
    auto rs = streams.stream(i);
    engine.run_trial(rs, out, &trace);
    EXPECT_EQ(trace.dropped(), 0u);
    replay_trial(trace, cfg, stats);
    if (::testing::Test::HasFatalFailure()) return stats;
  }
  return stats;
}

TEST(DeclusteredRebuild, RestoreScaleFixedAtFailureInstant) {
  const auto cfg = deterministic_restore_group(/*declustered=*/true,
                                               /*with_spare_pool=*/false);
  const ReplayStats stats = replay_trials(cfg, 60, 2026);
  // The regimes this test exists for must actually have occurred.
  EXPECT_GT(stats.restores_checked, 500u);
  EXPECT_GT(stats.degraded_starts, 50u);   // failures mid-rebuild
  EXPECT_GT(stats.speedups, 100u);         // healthy-group scale 5/7 < 1
}

TEST(DeclusteredRebuild, DedicatedSpareDurationsAreUnscaled) {
  // The same replay with the default model: every rebuild takes exactly
  // the base draw, no matter the group state.
  const auto cfg = deterministic_restore_group(/*declustered=*/false,
                                               /*with_spare_pool=*/false);
  const ReplayStats stats = replay_trials(cfg, 40, 2027);
  EXPECT_GT(stats.restores_checked, 300u);
  EXPECT_GT(stats.degraded_starts, 30u);
  EXPECT_EQ(stats.speedups, 0u);
}

TEST(DeclusteredRebuild, SparePoolStarvationKeepsDurationFromFailure) {
  // Declustered scaling composed with an undersized spare pool: a blocked
  // rebuild starts at the spare's arrival but runs for the duration fixed
  // at its failure instant (the scale is NOT re-evaluated), and consumes
  // exactly one restore (copyback-free spare handling).
  const auto cfg = deterministic_restore_group(/*declustered=*/true,
                                               /*with_spare_pool=*/true);
  const ReplayStats stats = replay_trials(cfg, 60, 2028);
  EXPECT_GT(stats.restores_checked, 500u);
  EXPECT_GT(stats.blocked_starts, 50u);
}

TEST(DeclusteredRebuild, TimingEngineRejectsDeclustered) {
  // The §5 pairwise engine pre-generates per-slot timelines and cannot
  // express state-dependent restore scaling; it must refuse loudly.
  const auto cfg = deterministic_restore_group(/*declustered=*/true,
                                               /*with_spare_pool=*/false);
  EXPECT_THROW(TimingDiagramEngine{cfg}, ModelError);
}

TEST(DeclusteredRebuild, ConfigDigestSeparatesRebuildModels) {
  // Dedicated-spare digests must be byte-stable (pre-existing sweep
  // caches stay valid); declustered must key differently.
  const auto dedicated = deterministic_restore_group(false, false);
  auto declustered = dedicated.clone();
  declustered.rebuild = raid::RebuildModel::kDeclustered;
  EXPECT_EQ(config_digest(dedicated),
            config_digest(dedicated.clone()));
  EXPECT_NE(config_digest(dedicated), config_digest(declustered));
}

TEST(DeclusteredRebuild, ScenarioSurfacesRebuildModel) {
  core::ScenarioConfig s;
  s.rebuild = raid::RebuildModel::kDeclustered;
  const auto cfg = s.to_group_config();
  EXPECT_EQ(cfg.rebuild, raid::RebuildModel::kDeclustered);
  EXPECT_NE(s.summary().find("declustered"), std::string::npos);
  core::ScenarioConfig d;
  EXPECT_EQ(d.summary().find("dedicated"), std::string::npos);
}

}  // namespace
}  // namespace raidrel::sim
