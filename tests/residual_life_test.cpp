#include "stats/residual_life.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/basic_distributions.h"
#include "stats/composite.h"
#include "stats/weibull.h"
#include "util/error.h"
#include "util/math.h"

namespace raidrel::stats {
namespace {

TEST(ResidualLife, ExponentialBaseIsUnchanged) {
  // Memorylessness: burn-in does nothing to an exponential.
  ResidualLife r(std::make_unique<Exponential>(0.01), 500.0);
  const Exponential e(0.01);
  for (double t : {1.0, 50.0, 400.0}) {
    EXPECT_NEAR(r.cdf(t), e.cdf(t), 1e-12) << t;
    EXPECT_NEAR(r.pdf(t), e.pdf(t), 1e-12) << t;
  }
  EXPECT_NEAR(r.mean(), 100.0, 1e-6);
}

TEST(ResidualLife, ConditionalSurvivalFormula) {
  const Weibull base(0.0, 100.0, 2.0);
  ResidualLife r(base.clone(), 50.0);
  for (double t : {10.0, 40.0, 120.0}) {
    EXPECT_NEAR(r.survival(t), base.survival(50.0 + t) / base.survival(50.0),
                1e-12)
        << t;
  }
  EXPECT_DOUBLE_EQ(r.cdf(0.0), 0.0);
}

TEST(ResidualLife, HazardIsShiftedBaseHazard) {
  const Weibull base(0.0, 1000.0, 0.7);  // infant mortality
  ResidualLife r(base.clone(), 200.0);
  EXPECT_NEAR(r.hazard(0.0), base.hazard(200.0), 1e-15);
  EXPECT_NEAR(r.hazard(300.0), base.hazard(500.0), 1e-15);
  // Burn-in strictly lowers the initial hazard of a beta < 1 law.
  EXPECT_LT(r.hazard(0.0), base.hazard(1.0));
}

TEST(ResidualLife, QuantileInvertsCdf) {
  ResidualLife r(std::make_unique<Weibull>(10.0, 300.0, 1.5), 100.0);
  for (double p : {0.01, 0.25, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(r.cdf(r.quantile(p)), p, 1e-9) << p;
  }
}

TEST(ResidualLife, SamplingMatchesConditionalLaw) {
  const Weibull base(0.0, 500.0, 0.8);
  ResidualLife r(base.clone(), 250.0);
  rng::RandomStream rs(5);
  util::RunningStats stats;
  for (int i = 0; i < 60000; ++i) stats.add(r.sample(rs));
  EXPECT_NEAR(stats.mean(), r.mean(), 5.0 * stats.sem());
}

TEST(ResidualLife, BurnInHelpsInfantMortalityHurtsWearOut) {
  // The design question this adaptor answers: probability of surviving the
  // first deployed year. Burn-in improves it for beta < 1, degrades it for
  // beta > 1 (burning useful life).
  const double year = 8760.0;
  const Weibull infant(0.0, 2.0e5, 0.7);
  const Weibull wearing(0.0, 2.0e5, 1.5);
  ResidualLife infant_burned(infant.clone(), 500.0);
  ResidualLife wearing_burned(wearing.clone(), 500.0);
  EXPECT_GT(infant_burned.survival(year), infant.survival(year));
  EXPECT_LT(wearing_burned.survival(year), wearing.survival(year));
}

TEST(ResidualLife, MixtureBurnInScreensWeakSubpopulation) {
  // Fig. 1 HDD #3 situation: 15% weak units. Burn-in screens them out,
  // cutting the deployed first-year failure probability.
  std::vector<MixtureDistribution::Component> comps;
  comps.push_back({0.15, std::make_unique<Weibull>(0.0, 1.0e3, 0.9)});
  comps.push_back({0.85, std::make_unique<Weibull>(0.0, 1.2e6, 1.0)});
  MixtureDistribution mix(std::move(comps));
  ResidualLife burned(mix.clone(), 1000.0);
  EXPECT_LT(burned.cdf(8760.0), 0.6 * mix.cdf(8760.0));
}

TEST(ResidualLife, ZeroBurnInIsIdentity) {
  const Weibull base(5.0, 77.0, 1.3);
  ResidualLife r(base.clone(), 0.0);
  for (double t : {1.0, 20.0, 90.0}) {
    EXPECT_NEAR(r.cdf(t), base.cdf(t), 1e-12);
  }
}

TEST(ResidualLife, Validation) {
  EXPECT_THROW(ResidualLife(nullptr, 10.0), ModelError);
  EXPECT_THROW(ResidualLife(std::make_unique<Exponential>(1.0), -1.0),
               ModelError);
  // Degenerate base: burning past the point mass leaves nothing.
  EXPECT_THROW(ResidualLife(std::make_unique<Degenerate>(5.0), 6.0),
               ModelError);
}

TEST(ResidualLife, ComposesWithItself) {
  // Burn-in of a burned-in law = total burn-in.
  const Weibull base(0.0, 100.0, 2.0);
  ResidualLife once(base.clone(), 30.0);
  ResidualLife twice(once.clone(), 20.0);
  ResidualLife direct(base.clone(), 50.0);
  for (double t : {5.0, 25.0, 80.0}) {
    EXPECT_NEAR(twice.cdf(t), direct.cdf(t), 1e-12) << t;
  }
}

}  // namespace
}  // namespace raidrel::stats
