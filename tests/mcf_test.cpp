#include "field/mcf.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/presets.h"
#include "sim/group_simulator.h"
#include "stats/basic_distributions.h"
#include "util/error.h"

namespace raidrel::field {
namespace {

TEST(Mcf, HandWorkedExample) {
  // Three systems: A events at {5, 12}, observed to 20; B event at {8},
  // observed to 10; C no events, observed to 15.
  std::vector<SystemHistory> h = {
      {{5.0, 12.0}, 20.0}, {{8.0}, 10.0}, {{}, 15.0}};
  MeanCumulativeFunction mcf(h);
  // t=5: 3 at risk -> 1/3. t=8: 3 at risk -> +1/3. B censors at 10.
  // t=12: 2 at risk -> +1/2.
  EXPECT_DOUBLE_EQ(mcf.value(4.9), 0.0);
  EXPECT_NEAR(mcf.value(5.0), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(mcf.value(8.0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(mcf.value(11.0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(mcf.value(12.0), 2.0 / 3.0 + 0.5, 1e-12);
  EXPECT_NEAR(mcf.value(100.0), 2.0 / 3.0 + 0.5, 1e-12);
  EXPECT_EQ(mcf.system_count(), 3u);
}

TEST(Mcf, EventAtCensoringTimeCounts) {
  // An event exactly at a (different system's) censoring time sees the
  // full risk set; an event at its own end is still in-window.
  std::vector<SystemHistory> h = {{{10.0}, 10.0}, {{}, 10.0}};
  MeanCumulativeFunction mcf(h);
  EXPECT_NEAR(mcf.value(10.0), 0.5, 1e-12);
}

TEST(Mcf, EqualWindowsIsMeanCountingProcess) {
  // All systems observed over the same window: MCF(t) = (total events <=
  // t) / n.
  std::vector<SystemHistory> h = {
      {{1.0, 2.0, 3.0}, 10.0}, {{2.5}, 10.0}, {{}, 10.0}, {{9.0}, 10.0}};
  MeanCumulativeFunction mcf(h);
  EXPECT_NEAR(mcf.value(2.6), 3.0 / 4.0, 1e-12);
  EXPECT_NEAR(mcf.value(10.0), 5.0 / 4.0, 1e-12);
}

TEST(Mcf, RecoversHppRate) {
  // Poisson events at rate 0.01/h on 500 systems: MCF(t) ~ 0.01 t and the
  // empirical ROCOF is flat.
  rng::RandomStream rs(3);
  const stats::Exponential gap(0.01);
  std::vector<SystemHistory> h;
  for (int s = 0; s < 500; ++s) {
    SystemHistory sys;
    sys.observation_end = 1000.0;
    double t = gap.sample(rs);
    while (t <= 1000.0) {
      sys.event_times.push_back(t);
      t += gap.sample(rs);
    }
    h.push_back(std::move(sys));
  }
  MeanCumulativeFunction mcf(h);
  EXPECT_NEAR(mcf.value(500.0), 5.0, 0.35);
  EXPECT_NEAR(mcf.value(1000.0), 10.0, 0.5);
  const double early = mcf.rocof(0.0, 500.0);
  const double late = mcf.rocof(500.0, 1000.0);
  EXPECT_NEAR(early / late, 1.0, 0.1);  // flat: HPP
}

TEST(Mcf, VarianceShrinksWithPopulation) {
  rng::RandomStream rs(4);
  const stats::Exponential gap(0.02);
  auto build = [&](int n) {
    std::vector<SystemHistory> h;
    for (int s = 0; s < n; ++s) {
      SystemHistory sys;
      sys.observation_end = 500.0;
      double t = gap.sample(rs);
      while (t <= 500.0) {
        sys.event_times.push_back(t);
        t += gap.sample(rs);
      }
      h.push_back(std::move(sys));
    }
    return MeanCumulativeFunction(h);
  };
  const auto small = build(50);
  const auto large = build(5000);
  EXPECT_GT(small.variance(500.0), large.variance(500.0));
}

TEST(Mcf, DetectsIncreasingRocofOfSimulatedRaidGroups) {
  // Feed real simulator output (the paper's base case without scrub) into
  // the field-analysis tool: the MCF must curve upward — the Fig. 8
  // observation made with the Trindade–Nathan plot itself.
  const auto cfg = core::presets::base_case_no_scrub().to_group_config();
  sim::GroupSimulator simulator(cfg);
  rng::StreamFactory streams(11);
  sim::TrialResult out;
  std::vector<SystemHistory> h;
  for (std::uint64_t i = 0; i < 3000; ++i) {
    auto rs = streams.stream(i);
    simulator.run_trial(rs, out);
    SystemHistory sys;
    sys.observation_end = cfg.mission_hours;
    for (const auto& ddf : out.ddfs) sys.event_times.push_back(ddf.time);
    h.push_back(std::move(sys));
  }
  MeanCumulativeFunction mcf(h);
  const double early = mcf.rocof(0.0, 29200.0);
  const double late = mcf.rocof(58400.0, 87600.0);
  EXPECT_GT(late, 1.15 * early);
}

TEST(Mcf, Validation) {
  EXPECT_THROW(MeanCumulativeFunction(std::vector<SystemHistory>{}),
               ModelError);
  std::vector<SystemHistory> bad = {{{5.0}, 3.0}};  // event past the window
  EXPECT_THROW(MeanCumulativeFunction{bad}, ModelError);
  std::vector<SystemHistory> ok = {{{1.0}, 3.0}};
  MeanCumulativeFunction mcf(ok);
  EXPECT_THROW(static_cast<void>(mcf.rocof(5.0, 5.0)), ModelError);
}

}  // namespace
}  // namespace raidrel::field
