#include "obs/json_reader.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>

#include "obs/json_writer.h"
#include "util/error.h"

namespace raidrel::obs {
namespace {

TEST(JsonReader, Scalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json("false").as_bool());
  EXPECT_DOUBLE_EQ(parse_json("-1.5e3").as_double(), -1500.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
  EXPECT_EQ(parse_json("  42  ").as_int64(), 42);
}

TEST(JsonReader, ArraysAndObjects) {
  const auto v = parse_json(R"({"a": [1, 2, 3], "b": {"c": "x"}})");
  ASSERT_TRUE(v.is_object());
  const auto& a = v.get("a");
  ASSERT_TRUE(a.is_array());
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.at(1).as_int64(), 2);
  EXPECT_EQ(v.get("b").get("c").as_string(), "x");
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW((void)v.get("missing"), ModelError);
}

TEST(JsonReader, ObjectMembersKeepInsertionOrder) {
  const auto v = parse_json(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "z");
  EXPECT_EQ(v.members()[1].first, "a");
  EXPECT_EQ(v.members()[2].first, "m");
}

TEST(JsonReader, Uint64KeepsFullPrecision) {
  // The whole reason the reader exists: 64-bit digests must not be coerced
  // through an IEEE double (53-bit mantissa) on their way back in.
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(parse_json("18446744073709551615").as_uint64(), max);
  EXPECT_EQ(parse_json("9007199254740993").as_uint64(),
            9007199254740993ull);  // 2^53 + 1, not representable as double
  EXPECT_THROW((void)parse_json("-1").as_uint64(), ModelError);
  EXPECT_THROW((void)parse_json("1.5").as_uint64(), ModelError);
  EXPECT_THROW((void)parse_json("18446744073709551616").as_uint64(),
               ModelError);
}

TEST(JsonReader, Int64Range) {
  EXPECT_EQ(parse_json("-9223372036854775808").as_int64(),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(parse_json("9223372036854775807").as_int64(),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_THROW((void)parse_json("9223372036854775808").as_int64(), ModelError);
}

TEST(JsonReader, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\/d\n\t\r\b\f")").as_string(),
            "a\"b\\c/d\n\t\r\b\f");
  EXPECT_EQ(parse_json(R"("Aé")").as_string(), "A\xc3\xa9");
}

TEST(JsonReader, KindMismatchThrows) {
  EXPECT_THROW((void)parse_json("1").as_string(), ModelError);
  EXPECT_THROW((void)parse_json("\"x\"").as_double(), ModelError);
  EXPECT_THROW((void)parse_json("[]").as_bool(), ModelError);
  EXPECT_THROW((void)parse_json("{}").at(0), ModelError);
}

TEST(JsonReader, MalformedDocumentsThrow) {
  EXPECT_THROW(parse_json(""), ModelError);
  EXPECT_THROW(parse_json("{"), ModelError);
  EXPECT_THROW(parse_json("[1,]"), ModelError);
  EXPECT_THROW(parse_json("{\"a\" 1}"), ModelError);
  EXPECT_THROW(parse_json("tru"), ModelError);
  EXPECT_THROW(parse_json("1 2"), ModelError);  // trailing garbage
  EXPECT_THROW(parse_json("\"unterminated"), ModelError);
  EXPECT_THROW(parse_json("nan"), ModelError);
  EXPECT_THROW(parse_json("-"), ModelError);
  EXPECT_THROW(parse_json("1.e3"), ModelError);
}

TEST(JsonReader, DuplicateObjectKeysRejected) {
  // Legal JSON, but our writer never produces it — a duplicate means a
  // corrupted or hand-edited manifest, where "first key wins" would
  // silently pick one of two conflicting values.
  EXPECT_THROW(parse_json(R"({"a": 1, "a": 2})"), ModelError);
  EXPECT_THROW(parse_json(R"({"a": 1, "b": {"x": 1, "x": 2}})"), ModelError);
  // Same key at different nesting levels is fine.
  EXPECT_NO_THROW(parse_json(R"({"a": 1, "b": {"a": 2}})"));
}

TEST(JsonReader, NonFiniteNumbersRejected) {
  // 1e999 parses as a valid token but overflows to infinity; the literal
  // spellings are not JSON at all. None may come back as a usable double.
  EXPECT_THROW((void)parse_json("1e999").as_double(), ModelError);
  EXPECT_THROW((void)parse_json("-1e999").as_double(), ModelError);
  EXPECT_THROW((void)parse_json(R"({"v": 1e999})").get("v").as_double(),
               ModelError);
  EXPECT_THROW(parse_json("NaN"), ModelError);
  EXPECT_THROW(parse_json("Infinity"), ModelError);
  EXPECT_THROW(parse_json("-Infinity"), ModelError);
  // Subnormals are finite and must keep working.
  EXPECT_EQ(parse_json("-2.5e-308").as_double(), -2.5e-308);
}

TEST(JsonReader, EveryTruncationOfARealDocumentThrows) {
  // A crash mid-write leaves a prefix of a valid manifest; every strict
  // prefix must be a clean ModelError, never a crash or a silent partial
  // parse.
  std::ostringstream os;
  {
    JsonWriter w(os);
    w.begin_object();
    w.kv("schema", "raidrel-sweep-manifest/2");
    w.kv("digest", std::uint64_t{17783286741236303588ull});
    w.key("cells");
    w.begin_array();
    w.begin_object();
    w.kv("label", "restore=12 group=4");
    w.kv("mean", 3.141592653589793);
    w.end_object();
    w.end_array();
    w.end_object();
  }
  const std::string doc = os.str();
  ASSERT_NO_THROW(parse_json(doc));
  for (std::size_t len = 0; len < doc.size(); ++len) {
    EXPECT_THROW(parse_json(doc.substr(0, len)), ModelError)
        << "prefix of length " << len << " parsed";
  }
}

TEST(JsonReader, DepthLimit) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW(parse_json(deep), ModelError);
}

TEST(JsonReader, RoundTripsWriterOutput) {
  // Writer -> reader -> every value identical, including a double that
  // needs all 17 significant digits and a max-range uint64.
  std::ostringstream os;
  {
    JsonWriter w(os);
    w.begin_object();
    w.kv("digest", std::uint64_t{18446744073709551615ull});
    w.kv("mean", 0.1);
    w.kv("pi", 3.141592653589793);
    w.kv("neg", -2.5e-308);
    w.kv("label", "scrub=168 \"quoted\"\n");
    w.kv("ok", true);
    w.key("list");
    w.begin_array();
    w.value(std::int64_t{-3});
    w.null();
    w.end_array();
    w.end_object();
  }
  const auto v = parse_json(os.str());
  EXPECT_EQ(v.get("digest").as_uint64(), 18446744073709551615ull);
  EXPECT_EQ(v.get("mean").as_double(), 0.1);  // exact, not just near
  EXPECT_EQ(v.get("pi").as_double(), 3.141592653589793);
  EXPECT_EQ(v.get("neg").as_double(), -2.5e-308);
  EXPECT_EQ(v.get("label").as_string(), "scrub=168 \"quoted\"\n");
  EXPECT_TRUE(v.get("ok").as_bool());
  EXPECT_EQ(v.get("list").at(0).as_int64(), -3);
  EXPECT_TRUE(v.get("list").at(1).is_null());
}

}  // namespace
}  // namespace raidrel::obs
