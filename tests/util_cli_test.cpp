#include "util/cli.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace raidrel::util {
namespace {

CliArgs make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(CliArgs, SeparateValueForm) {
  const auto args = make({"--trials", "5000", "--seed", "42"});
  EXPECT_EQ(args.get_int("trials", 0), 5000);
  EXPECT_EQ(args.get_int("seed", 0), 42);
}

TEST(CliArgs, EqualsValueForm) {
  const auto args = make({"--scrub=168.5"});
  EXPECT_DOUBLE_EQ(args.get_double("scrub", 0.0), 168.5);
}

TEST(CliArgs, BareFlagIsBooleanTrue) {
  const auto args = make({"--verbose"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_TRUE(args.get_bool("verbose", false));
}

TEST(CliArgs, BooleanValueParsing) {
  EXPECT_FALSE(make({"--x", "false"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=0"}).get_bool("x", true));
  EXPECT_TRUE(make({"--x", "yes"}).get_bool("x", false));
}

TEST(CliArgs, FallbacksWhenAbsent) {
  const auto args = make({});
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(args.get_string("missing", "dflt"), "dflt");
  EXPECT_FALSE(args.get_bool("missing", false));
}

TEST(CliArgs, PositionalsCollected) {
  const auto args = make({"pos1", "--k", "v", "pos2"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "pos1");
  EXPECT_EQ(args.positional()[1], "pos2");
  EXPECT_EQ(args.program(), "prog");
}

TEST(CliArgs, StringValues) {
  const auto args = make({"--out", "results.csv"});
  EXPECT_EQ(args.get_string("out", ""), "results.csv");
}

// "--trials abc" used to parse as 0 (strtoll with an unchecked end
// pointer) and silently run zero trials. It must be a loud error.
TEST(CliArgs, GetIntRejectsUnparseableValues) {
  EXPECT_THROW((void)make({"--trials", "abc"}).get_int("trials", 1),
               ModelError);
  EXPECT_THROW((void)make({"--trials", "12x"}).get_int("trials", 1),
               ModelError);
  EXPECT_THROW((void)make({"--trials="}).get_int("trials", 1), ModelError);
  EXPECT_THROW(
      (void)make({"--trials", "999999999999999999999"}).get_int("trials", 1),
      ModelError);
}

TEST(CliArgs, GetDoubleRejectsUnparseableValues) {
  EXPECT_THROW((void)make({"--scrub", "fast"}).get_double("scrub", 1.0),
               ModelError);
  EXPECT_THROW((void)make({"--scrub", "1.5h"}).get_double("scrub", 1.0),
               ModelError);
  EXPECT_THROW((void)make({"--scrub="}).get_double("scrub", 1.0), ModelError);
}

TEST(CliArgs, ParseErrorNamesTheFlag) {
  try {
    (void)make({"--trials", "abc"}).get_int("trials", 1);
    FAIL() << "expected ModelError";
  } catch (const ModelError& e) {
    EXPECT_NE(std::string(e.what()).find("--trials"), std::string::npos)
        << e.what();
  }
}

TEST(CliArgs, GetIntStillParsesNegativesAndSigns) {
  EXPECT_EQ(make({"--offset", "-12"}).get_int("offset", 0), -12);
  EXPECT_EQ(make({"--offset", "+7"}).get_int("offset", 0), 7);
}

TEST(CliArgs, GetIntAtLeastEnforcesMinimum) {
  EXPECT_EQ(make({"--group", "4"}).get_int_at_least("group", 8, 2), 4);
  EXPECT_EQ(make({}).get_int_at_least("group", 8, 2), 8);  // fallback passes
  EXPECT_THROW((void)make({"--group", "-3"}).get_int_at_least("group", 8, 2),
               ModelError);
  EXPECT_THROW((void)make({"--group", "1"}).get_int_at_least("group", 8, 2),
               ModelError);
}

}  // namespace
}  // namespace raidrel::util
