#include <gtest/gtest.h>

#include "sim/group_simulator.h"
#include "sim/runner.h"
#include "stats/basic_distributions.h"
#include "stats/weibull.h"
#include "util/error.h"

namespace raidrel::sim {
namespace {

using raid::GroupConfig;
using raid::SlotModel;
using stats::Degenerate;

SlotModel scripted_slot(double op, double restore) {
  SlotModel m;
  m.time_to_op_failure = std::make_unique<Degenerate>(op);
  m.time_to_restore = std::make_unique<Degenerate>(restore);
  return m;
}

TrialResult simulate(const GroupConfig& cfg, std::uint64_t seed = 1) {
  GroupSimulator sim(cfg);
  rng::RandomStream rs(seed);
  TrialResult out;
  sim.run_trial(rs, out);
  return out;
}

TEST(SparePool, ValidationInConfig) {
  auto cfg = raid::make_uniform_group(4, 1, scripted_slot(100.0, 10.0));
  cfg.spare_pool = raid::SparePoolConfig{0, 24.0};
  EXPECT_THROW(cfg.validate(), ModelError);
  cfg.spare_pool = raid::SparePoolConfig{1, 0.0};
  EXPECT_THROW(cfg.validate(), ModelError);
  cfg.spare_pool = raid::SparePoolConfig{1, 24.0};
  EXPECT_NO_THROW(cfg.validate());
}

TEST(SparePool, LargePoolBehavesLikeInfiniteSpares) {
  // With more spares than failures, results are identical to no pool at
  // all (the pool logic consumes no randomness).
  raid::SlotModel m;
  m.time_to_op_failure = std::make_unique<stats::Weibull>(0.0, 3000.0, 1.2);
  m.time_to_restore = std::make_unique<stats::Weibull>(6.0, 50.0, 2.0);
  auto without = raid::make_uniform_group(8, 1, m, 20000.0);
  auto with = without.clone();
  with.spare_pool = raid::SparePoolConfig{1000, 1.0};
  const auto a = run_monte_carlo(without, {.trials = 500, .seed = 7,
                                           .threads = 1,
                                           .bucket_hours = 1000.0});
  const auto b = run_monte_carlo(with, {.trials = 500, .seed = 7,
                                        .threads = 1,
                                        .bucket_hours = 1000.0});
  EXPECT_DOUBLE_EQ(a.total_ddfs_per_1000(), b.total_ddfs_per_1000());
  EXPECT_EQ(a.op_failures(), b.op_failures());
  EXPECT_EQ(a.restores_completed(), b.restores_completed());
}

TEST(SparePool, StarvedPoolDelaysRestoreDeterministically) {
  // One spare, 100 h lead time. Slot 0 fails at 50 (takes the spare,
  // restored at 60; replacement ordered for t=150). Slot 1 fails at 80:
  // pool empty -> waits for the 150 arrival, restored at 160.
  std::vector<SlotModel> slots;
  slots.push_back(scripted_slot(1e18, 10.0));  // never fails
  slots.push_back(scripted_slot(1e18, 10.0));
  slots[0] = scripted_slot(50.0, 10.0);
  slots[1] = scripted_slot(80.0, 10.0);
  GroupConfig cfg;
  cfg.slots = std::move(slots);
  cfg.redundancy = 1;
  cfg.mission_hours = 200.0;
  cfg.spare_pool = raid::SparePoolConfig{1, 100.0};
  const auto r = simulate(cfg);
  // Slot 0: fails 50, restored 60; new drive fails 110 (life 50), pool
  // empty and slot 1 is still waiting -> DDF at 110 (slot 1 down).
  ASSERT_EQ(r.ddfs.size(), 1u);
  EXPECT_DOUBLE_EQ(r.ddfs[0].time, 110.0);
  EXPECT_EQ(r.ddfs[0].kind, raid::DdfKind::kDoubleOperational);
  // Restores: slot 0 at 60; slot 1 gets the 150 arrival, restored 160;
  // slot 0's second failure waits for the order placed at 150 -> arrives
  // 250 > mission, never restored.
  EXPECT_EQ(r.restores_completed, 2u);
  EXPECT_EQ(r.op_failures, 3u);
}

TEST(SparePool, WaitingDriveCountsAsFault) {
  // A drive blocked on the pool leaves the group degraded: a second
  // failure during the wait is a DDF even though no rebuild is running.
  std::vector<SlotModel> slots;
  slots.push_back(scripted_slot(50.0, 1.0));   // fails at 50, waits
  slots.push_back(scripted_slot(120.0, 1.0));  // fails during the wait
  slots.push_back(scripted_slot(1e18, 1.0));
  GroupConfig cfg;
  cfg.slots = std::move(slots);
  cfg.redundancy = 1;
  cfg.mission_hours = 130.0;
  cfg.spare_pool = raid::SparePoolConfig{1, 1000.0};  // lead > mission
  // Slot 0 takes the only spare at 50 (restored 51); its replacement
  // arrives at 1050 — far beyond the mission. Make slot 0 fail twice so
  // the second failure has to wait.
  cfg.slots[0] = scripted_slot(50.0, 1.0);
  const auto r = simulate(cfg);
  // Timeline: 50 slot0 fails, takes spare, restored 51. 101 slot0's new
  // drive fails (life 50), pool empty -> waits forever. 120 slot1 fails:
  // slot0 is down-waiting -> DDF.
  ASSERT_EQ(r.ddfs.size(), 1u);
  EXPECT_DOUBLE_EQ(r.ddfs[0].time, 120.0);
}

TEST(SparePool, StatisticallyIncreasesDdfsWhenStarved) {
  raid::SlotModel m;
  m.time_to_op_failure = std::make_unique<stats::Weibull>(0.0, 3000.0, 1.0);
  m.time_to_restore = std::make_unique<stats::Weibull>(6.0, 50.0, 2.0);
  auto plentiful = raid::make_uniform_group(8, 1, m, 20000.0);
  auto starved = plentiful.clone();
  plentiful.spare_pool = raid::SparePoolConfig{4, 24.0};
  starved.spare_pool = raid::SparePoolConfig{1, 500.0};
  const RunOptions run{.trials = 4000, .seed = 9, .threads = 0,
                       .bucket_hours = 1000.0};
  const auto a = run_monte_carlo(plentiful, run);
  const auto b = run_monte_carlo(starved, run);
  EXPECT_GT(b.total_ddfs_per_1000(), 1.5 * a.total_ddfs_per_1000());
}

TEST(SparePool, PoolRecoversAfterReplenishment) {
  // Slot 0 fails at 150 and (new drive) at 310. With a 100 h lead time
  // the pool restocks at 250, so the second rebuild starts immediately;
  // with a 1000 h lead time the second failure waits past the mission end.
  auto make_cfg = [](double lead) {
    std::vector<SlotModel> slots;
    slots.push_back(scripted_slot(150.0, 10.0));
    slots.push_back(scripted_slot(1e18, 10.0));
    GroupConfig cfg;
    cfg.slots = std::move(slots);
    cfg.redundancy = 1;
    cfg.mission_hours = 400.0;
    cfg.spare_pool = raid::SparePoolConfig{1, lead};
    return cfg;
  };
  const auto fast = simulate(make_cfg(100.0));
  EXPECT_TRUE(fast.ddfs.empty());
  EXPECT_EQ(fast.op_failures, 2u);       // 150 and 310
  EXPECT_EQ(fast.restores_completed, 2u);  // 160 and 320

  const auto slow = simulate(make_cfg(1000.0));
  EXPECT_EQ(slow.op_failures, 2u);
  EXPECT_EQ(slow.restores_completed, 1u);  // second rebuild never starts
}

}  // namespace
}  // namespace raidrel::sim
