#include "sim/timing_engine.h"

#include <gtest/gtest.h>

#include "stats/basic_distributions.h"
#include "stats/weibull.h"
#include "util/error.h"

namespace raidrel::sim {
namespace {

using raid::DdfKind;
using raid::GroupConfig;
using raid::SlotModel;
using stats::Degenerate;

SlotModel scripted_slot(double op, double restore, double ld = 1e18,
                        double scrub = -1.0) {
  SlotModel m;
  m.time_to_op_failure = std::make_unique<Degenerate>(op);
  m.time_to_restore = std::make_unique<Degenerate>(restore);
  m.time_to_latent_defect = std::make_unique<Degenerate>(ld);
  if (scrub >= 0.0) m.time_to_scrub = std::make_unique<Degenerate>(scrub);
  return m;
}

GroupConfig scripted_group(std::vector<SlotModel> slots, double mission,
                           unsigned redundancy = 1) {
  GroupConfig cfg;
  cfg.slots = std::move(slots);
  cfg.redundancy = redundancy;
  cfg.mission_hours = mission;
  return cfg;
}

TrialResult simulate(const GroupConfig& cfg, std::uint64_t seed = 1) {
  TimingDiagramEngine engine(cfg);
  rng::RandomStream rs(seed);
  TrialResult out;
  engine.run_trial(rs, out);
  return out;
}

TEST(TimingEngine, OverlapIsDoubleOpDdf) {
  std::vector<SlotModel> slots;
  slots.push_back(scripted_slot(100.0, 50.0));
  slots.push_back(scripted_slot(120.0, 50.0));
  const auto r = simulate(scripted_group(std::move(slots), 130.0));
  ASSERT_EQ(r.ddfs.size(), 1u);
  EXPECT_DOUBLE_EQ(r.ddfs[0].time, 120.0);
  EXPECT_EQ(r.ddfs[0].kind, DdfKind::kDoubleOperational);
}

TEST(TimingEngine, NoOverlapNoDdf) {
  std::vector<SlotModel> slots;
  slots.push_back(scripted_slot(100.0, 20.0));
  slots.push_back(scripted_slot(150.0, 20.0));
  const auto r = simulate(scripted_group(std::move(slots), 180.0));
  EXPECT_TRUE(r.ddfs.empty());
  EXPECT_EQ(r.op_failures, 2u);
}

TEST(TimingEngine, LatentDefectThenOpIsDdf) {
  std::vector<SlotModel> slots;
  slots.push_back(scripted_slot(1e18, 50.0, 50.0));
  slots.push_back(scripted_slot(100.0, 50.0));
  const auto r = simulate(scripted_group(std::move(slots), 200.0));
  ASSERT_EQ(r.ddfs.size(), 1u);
  EXPECT_EQ(r.ddfs[0].kind, DdfKind::kLatentThenOp);
}

TEST(TimingEngine, ScrubbedDefectIsSafe) {
  std::vector<SlotModel> slots;
  slots.push_back(scripted_slot(1e18, 50.0, 50.0, 10.0));  // clears at 60
  slots.push_back(scripted_slot(100.0, 50.0));
  const auto r = simulate(scripted_group(std::move(slots), 90.0));
  EXPECT_TRUE(r.ddfs.empty());
  EXPECT_GE(r.scrubs_completed, 1u);
}

TEST(TimingEngine, DefectDiesWithItsDrive) {
  // Slot 0's drive fails at 100 and its defect (t=50, no scrub) must not
  // outlive it: slot 1's failure at 160 happens when slot 0's NEW drive is
  // healthy and slot 0 is back up (restored at 130) -> no DDF.
  std::vector<SlotModel> slots;
  slots.push_back(scripted_slot(100.0, 30.0, 50.0));
  slots.push_back(scripted_slot(160.0, 30.0));
  const auto r = simulate(scripted_group(std::move(slots), 190.0));
  EXPECT_TRUE(r.ddfs.empty());
}

TEST(TimingEngine, FreezeSuppressesBackToBackDdfs) {
  std::vector<SlotModel> slots;
  slots.push_back(scripted_slot(100.0, 100.0));
  slots.push_back(scripted_slot(110.0, 100.0));
  slots.push_back(scripted_slot(115.0, 100.0));
  const auto r = simulate(scripted_group(std::move(slots), 150.0));
  ASSERT_EQ(r.ddfs.size(), 1u);
  EXPECT_DOUBLE_EQ(r.ddfs[0].time, 110.0);
}

TEST(TimingEngine, Raid6NeedsThreeFaults) {
  std::vector<SlotModel> slots;
  slots.push_back(scripted_slot(1e18, 100.0, 50.0));
  slots.push_back(scripted_slot(100.0, 100.0));
  slots.push_back(scripted_slot(120.0, 100.0));
  slots.push_back(scripted_slot(1e18, 100.0));
  const auto r =
      simulate(scripted_group(std::move(slots), 130.0, /*redundancy=*/2));
  ASSERT_EQ(r.ddfs.size(), 1u);
  EXPECT_DOUBLE_EQ(r.ddfs[0].time, 120.0);
}

TEST(TimingEngine, CountersMatchScriptedTimeline) {
  std::vector<SlotModel> slots;
  slots.push_back(scripted_slot(100.0, 10.0));  // fails at 100, 210, 320
  slots.push_back(scripted_slot(1e18, 10.0));
  const auto r = simulate(scripted_group(std::move(slots), 340.0));
  EXPECT_EQ(r.op_failures, 3u);
  EXPECT_EQ(r.restores_completed, 3u);
  EXPECT_TRUE(r.ddfs.empty());
}

TEST(TimingEngine, RejectsSparePoolConfigs) {
  std::vector<SlotModel> slots;
  slots.push_back(scripted_slot(100.0, 10.0));
  slots.push_back(scripted_slot(200.0, 10.0));
  auto cfg = scripted_group(std::move(slots), 300.0);
  cfg.spare_pool = raid::SparePoolConfig{1, 24.0};
  EXPECT_THROW(TimingDiagramEngine{cfg}, raidrel::ModelError);
}

TEST(TimingEngine, DefectRenewalPausesDuringScrubResidence) {
  // ld 50, scrub 200, mission 600: defects at 50 (clears 250) and 300
  // (clears 500), next would be 550+... -> exactly 3 defects by 600.
  std::vector<SlotModel> slots;
  slots.push_back(scripted_slot(1e18, 10.0, 50.0, 200.0));
  slots.push_back(scripted_slot(1e18, 10.0));
  const auto r = simulate(scripted_group(std::move(slots), 600.0));
  EXPECT_EQ(r.latent_defects, 3u);
  EXPECT_EQ(r.scrubs_completed, 2u);
}

}  // namespace
}  // namespace raidrel::sim
