#include "sim/runner.h"

#include <gtest/gtest.h>

#include "stats/basic_distributions.h"
#include "stats/weibull.h"
#include "util/error.h"

namespace raidrel::sim {
namespace {

raid::GroupConfig busy_group(double mission = 20000.0) {
  // Failure-heavy configuration so short runs still produce DDFs.
  raid::SlotModel m;
  m.time_to_op_failure = std::make_unique<stats::Weibull>(0.0, 4000.0, 1.2);
  m.time_to_restore = std::make_unique<stats::Weibull>(6.0, 100.0, 2.0);
  m.time_to_latent_defect = std::make_unique<stats::Weibull>(0.0, 2000.0, 1.0);
  m.time_to_scrub = std::make_unique<stats::Weibull>(6.0, 300.0, 3.0);
  return raid::make_uniform_group(8, 1, m, mission);
}

TEST(Runner, AccumulatesRequestedTrials) {
  const auto cfg = busy_group();
  const auto result =
      run_monte_carlo(cfg, {.trials = 500, .seed = 1, .threads = 2,
                            .bucket_hours = 1000.0});
  EXPECT_EQ(result.trials(), 500u);
  EXPECT_GT(result.total_ddfs_per_1000(), 0.0);
  EXPECT_GT(result.op_failures(), 0u);
  EXPECT_GT(result.latent_defects(), 0u);
}

TEST(Runner, CountingTotalsIndependentOfThreadCount) {
  // Per-trial streams are derived from (seed, trial index): the same DDFs
  // occur whether 1 or 4 workers run them. Counts are integer sums, so
  // they match exactly.
  const auto cfg = busy_group();
  const RunOptions base{.trials = 400, .seed = 7, .threads = 1,
                        .bucket_hours = 1000.0};
  RunOptions multi = base;
  multi.threads = 4;
  const auto r1 = run_monte_carlo(cfg, base);
  const auto r4 = run_monte_carlo(cfg, multi);
  EXPECT_DOUBLE_EQ(r1.total_ddfs_per_1000(), r4.total_ddfs_per_1000());
  EXPECT_EQ(r1.op_failures(), r4.op_failures());
  EXPECT_EQ(r1.latent_defects(), r4.latent_defects());
  EXPECT_EQ(r1.scrubs_completed(), r4.scrubs_completed());
  const auto c1 = r1.cumulative_ddfs_per_1000();
  const auto c4 = r4.cumulative_ddfs_per_1000();
  ASSERT_EQ(c1.size(), c4.size());
  for (std::size_t i = 0; i < c1.size(); ++i) {
    EXPECT_DOUBLE_EQ(c1[i], c4[i]) << i;
  }
}

TEST(Runner, DifferentSeedsGiveDifferentButCloseResults) {
  const auto cfg = busy_group();
  const auto a = run_monte_carlo(cfg, {.trials = 2000, .seed = 1,
                                       .threads = 0, .bucket_hours = 1000.0});
  const auto b = run_monte_carlo(cfg, {.trials = 2000, .seed = 2,
                                       .threads = 0, .bucket_hours = 1000.0});
  EXPECT_NE(a.total_ddfs_per_1000(), b.total_ddfs_per_1000());
  const double sem = a.total_ddfs_per_1000_sem() + b.total_ddfs_per_1000_sem();
  EXPECT_NEAR(a.total_ddfs_per_1000(), b.total_ddfs_per_1000(), 6.0 * sem);
}

TEST(Runner, RejectsZeroTrials) {
  const auto cfg = busy_group();
  EXPECT_THROW(run_monte_carlo(cfg, {.trials = 0}), ModelError);
}

TEST(RunResult, CumulativeSeriesIsMonotone) {
  const auto cfg = busy_group();
  const auto r = run_monte_carlo(cfg, {.trials = 500, .seed = 3,
                                       .threads = 0, .bucket_hours = 500.0});
  const auto cum = r.cumulative_ddfs_per_1000();
  for (std::size_t i = 1; i < cum.size(); ++i) {
    EXPECT_GE(cum[i], cum[i - 1]);
  }
  EXPECT_NEAR(cum.back(), r.total_ddfs_per_1000(), 1e-9);
}

TEST(RunResult, RocofSumsToTotal) {
  const auto cfg = busy_group();
  const auto r = run_monte_carlo(cfg, {.trials = 300, .seed = 4,
                                       .threads = 0, .bucket_hours = 500.0});
  const auto rocof = r.rocof_per_1000();
  double total = 0.0;
  for (double v : rocof) total += v;
  EXPECT_NEAR(total, r.total_ddfs_per_1000(), 1e-9);
}

TEST(RunResult, KindSplitSumsToTotal) {
  const auto cfg = busy_group();
  const auto r = run_monte_carlo(cfg, {.trials = 500, .seed = 5,
                                       .threads = 0, .bucket_hours = 500.0});
  const double split = r.total_per_1000(raid::DdfKind::kDoubleOperational) +
                       r.total_per_1000(raid::DdfKind::kLatentThenOp);
  EXPECT_NEAR(split, r.total_ddfs_per_1000(), 1e-9);
}

TEST(RunResult, InterpolatedQueryMatchesBucketEdges) {
  const auto cfg = busy_group();
  const auto r = run_monte_carlo(cfg, {.trials = 300, .seed = 6,
                                       .threads = 0, .bucket_hours = 500.0});
  const auto cum = r.cumulative_ddfs_per_1000();
  EXPECT_NEAR(r.ddfs_per_1000_at(500.0), cum[0], 1e-9);
  EXPECT_NEAR(r.ddfs_per_1000_at(1000.0), cum[1], 1e-9);
  EXPECT_DOUBLE_EQ(r.ddfs_per_1000_at(0.0), 0.0);
  // Mid-bucket value lies between the edges.
  const double mid = r.ddfs_per_1000_at(750.0);
  EXPECT_GE(mid, cum[0]);
  EXPECT_LE(mid, cum[1]);
}

TEST(RunResult, MergeRejectsMismatchedGeometry) {
  RunResult a(1000.0, 100.0);
  RunResult b(1000.0, 200.0);
  EXPECT_THROW(a.merge(b), ModelError);
}

TEST(RunResult, QueriesRequireTrials) {
  RunResult empty(1000.0, 100.0);
  EXPECT_THROW(static_cast<void>(empty.total_ddfs_per_1000()), ModelError);
  EXPECT_THROW(empty.cumulative_ddfs_per_1000(), ModelError);
}

TEST(RunResult, SemShrinksWithMoreTrials) {
  const auto cfg = busy_group();
  const auto small = run_monte_carlo(cfg, {.trials = 200, .seed = 8,
                                           .threads = 0,
                                           .bucket_hours = 1000.0});
  const auto large = run_monte_carlo(cfg, {.trials = 3200, .seed = 8,
                                           .threads = 0,
                                           .bucket_hours = 1000.0});
  EXPECT_LT(large.total_ddfs_per_1000_sem(),
            small.total_ddfs_per_1000_sem());
}

}  // namespace
}  // namespace raidrel::sim
