// Tests of the latent-defect clock semantics (raid::LatentClock): the
// paper's §5 renewal vs the drive-age NHPP needed by phase-dependent
// (duty-cycle) defect laws.
#include <gtest/gtest.h>

#include "core/presets.h"
#include "sim/group_simulator.h"
#include "sim/runner.h"
#include "stats/basic_distributions.h"
#include "stats/piecewise.h"
#include "stats/weibull.h"
#include "workload/duty_cycle.h"

namespace raidrel::sim {
namespace {

TEST(LatentClock, ModesIdenticalForExponentialLaw) {
  // Memoryless TTLd: the residual draw and the fresh draw transform the
  // same Exp(1) variate identically, so whole runs match bit for bit.
  auto renewal = core::presets::base_case().to_group_config();
  auto drive_age = renewal.clone();
  drive_age.latent_clock = raid::LatentClock::kDriveAge;
  const RunOptions run{.trials = 400, .seed = 3, .threads = 1,
                       .bucket_hours = 730.0};
  const auto a = run_monte_carlo(renewal, run);
  const auto b = run_monte_carlo(drive_age, run);
  EXPECT_DOUBLE_EQ(a.total_ddfs_per_1000(), b.total_ddfs_per_1000());
  EXPECT_EQ(a.latent_defects(), b.latent_defects());
  EXPECT_EQ(a.scrubs_completed(), b.scrubs_completed());
}

TEST(LatentClock, DriveAgeRespectsQuietPhase) {
  // Zero defect intensity for the first 5,000 h, then a high rate. Under
  // the drive-age clock no defect can occur in the quiet phase.
  raid::SlotModel m;
  m.time_to_op_failure = std::make_unique<stats::Degenerate>(1e18);
  m.time_to_restore = std::make_unique<stats::Degenerate>(10.0);
  m.time_to_latent_defect = std::make_unique<stats::PiecewiseConstantHazard>(
      std::vector<stats::PiecewiseConstantHazard::Segment>{
          {0.0, 0.0}, {5000.0, 1.0 / 200.0}});
  m.time_to_scrub = std::make_unique<stats::Weibull>(6.0, 168.0, 3.0);
  auto cfg = raid::make_uniform_group(4, 1, m, 20000.0);
  cfg.latent_clock = raid::LatentClock::kDriveAge;
  GroupSimulator sim(cfg);
  rng::StreamFactory streams(7);
  TrialResult out;
  std::uint64_t defects = 0;
  for (int i = 0; i < 200; ++i) {
    auto rs = streams.stream(static_cast<std::uint64_t>(i));
    sim.run_trial(rs, out);
    defects += out.latent_defects;
    // All arrivals land after the quiet phase, visible indirectly: with
    // the renewal clock defects restart in the quiet phase after every
    // scrub, throttling the count; drive-age should see the full rate.
  }
  // Expected arrivals per drive over the active 15,000 h with pauses of
  // ~150 h per defect: roughly 15000/(200+150) ~ 43; 4 drives, 200 trials.
  const double per_drive =
      static_cast<double>(defects) / (4.0 * 200.0);
  EXPECT_GT(per_drive, 30.0);
  EXPECT_LT(per_drive, 50.0);
}

TEST(LatentClock, RenewalClockRestartsPhaseLaw) {
  // Same configuration under the paper's renewal clock: every scrub
  // completion restarts the law at its (zero-rate) first phase, so after
  // the first defect each renewal costs another 5,000 h of silence —
  // massively fewer defects. This contrast is why kDriveAge exists.
  raid::SlotModel m;
  m.time_to_op_failure = std::make_unique<stats::Degenerate>(1e18);
  m.time_to_restore = std::make_unique<stats::Degenerate>(10.0);
  m.time_to_latent_defect = std::make_unique<stats::PiecewiseConstantHazard>(
      std::vector<stats::PiecewiseConstantHazard::Segment>{
          {0.0, 0.0}, {5000.0, 1.0 / 200.0}});
  m.time_to_scrub = std::make_unique<stats::Weibull>(6.0, 168.0, 3.0);
  auto cfg = raid::make_uniform_group(4, 1, m, 20000.0);
  cfg.latent_clock = raid::LatentClock::kRenewal;  // default
  GroupSimulator sim(cfg);
  rng::StreamFactory streams(7);
  TrialResult out;
  std::uint64_t defects = 0;
  for (int i = 0; i < 200; ++i) {
    auto rs = streams.stream(static_cast<std::uint64_t>(i));
    sim.run_trial(rs, out);
    defects += out.latent_defects;
  }
  const double per_drive = static_cast<double>(defects) / (4.0 * 200.0);
  // Each defect cycle costs >= 5000 h: at most ~4 per drive in 20,000 h.
  EXPECT_LT(per_drive, 5.0);
}

TEST(LatentClock, BackLoadedWorkloadIsWorseUnderDriveAge) {
  // The bench_duty_cycle claim as a test: same lifetime read volume,
  // defects arriving late (when the beta = 1.12 op hazard is high) lose
  // more data than defects arriving early.
  const double rer = 8.0e-14;
  auto make = [&](const workload::DutyCycleProfile& profile) {
    auto cfg = core::presets::base_case().to_group_config();
    cfg.latent_clock = raid::LatentClock::kDriveAge;
    const auto ttld = workload::ttld_from_profile(profile, rer);
    for (auto& slot : cfg.slots) slot.time_to_latent_defect = ttld.clone();
    return cfg;
  };
  const RunOptions run{.trials = 6000, .seed = 9, .threads = 0,
                       .bucket_hours = 730.0};
  // Symmetric volumes: heavy first year vs heavy last year.
  workload::DutyCycleProfile front{
      "front", {{"heavy", 0.0, 1.35e10}, {"quiet", 8760.0, 1.35e9}}};
  workload::DutyCycleProfile back{
      "back", {{"quiet", 0.0, 1.35e9}, {"heavy", 78840.0, 1.35e10}}};
  const auto f = run_monte_carlo(make(front), run);
  const auto b = run_monte_carlo(make(back), run);
  // Early defects face the infant op hazard; late ones the worn hazard.
  // With beta = 1.12 the late-heavy profile must lose more data per
  // *heavy-phase* exposure; compare DDFs inside each heavy year.
  const double front_heavy = f.ddfs_per_1000_at(8760.0);
  const double back_heavy =
      b.ddfs_per_1000_at(87600.0) - b.ddfs_per_1000_at(78840.0);
  EXPECT_GT(back_heavy, 1.1 * front_heavy);
}

}  // namespace
}  // namespace raidrel::sim
