#include "stats/point_process.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/presets.h"
#include "sim/group_simulator.h"
#include "util/error.h"
#include "util/math.h"

namespace raidrel::stats {
namespace {

std::vector<EventHistory> simulate_fleet(const PowerLawProcess& process,
                                         std::size_t systems, double horizon,
                                         std::uint64_t seed) {
  rng::StreamFactory streams(seed);
  std::vector<EventHistory> fleet;
  fleet.reserve(systems);
  for (std::size_t s = 0; s < systems; ++s) {
    auto rs = streams.stream(s);
    fleet.push_back({process.simulate(horizon, rs), horizon});
  }
  return fleet;
}

TEST(PowerLawProcess, IntensityAndMeanConsistent) {
  const PowerLawProcess p(1000.0, 1.5);
  // d/dt mean_events = intensity.
  const double t = 700.0;
  const double h = 0.01;
  const double numeric =
      (p.mean_events(t + h) - p.mean_events(t - h)) / (2.0 * h);
  EXPECT_NEAR(numeric, p.intensity(t), 1e-6 * p.intensity(t));
  EXPECT_NEAR(p.mean_events(1000.0), 1.0, 1e-12);
}

TEST(PowerLawProcess, Beta1IsHomogeneousPoisson) {
  const PowerLawProcess p(100.0, 1.0);
  EXPECT_DOUBLE_EQ(p.intensity(1.0), 0.01);
  EXPECT_DOUBLE_EQ(p.intensity(1e6), 0.01);
  rng::RandomStream rs(1);
  util::RunningStats counts;
  for (int i = 0; i < 3000; ++i) {
    counts.add(static_cast<double>(p.simulate(1000.0, rs).size()));
  }
  EXPECT_NEAR(counts.mean(), 10.0, 0.2);
  EXPECT_NEAR(counts.variance(), 10.0, 0.8);  // Poisson: var = mean
}

TEST(PowerLawProcess, SimulatedCountsMatchMeanFunction) {
  const PowerLawProcess p(500.0, 2.0);
  rng::RandomStream rs(2);
  util::RunningStats counts;
  for (int i = 0; i < 3000; ++i) {
    counts.add(static_cast<double>(p.simulate(1500.0, rs).size()));
  }
  EXPECT_NEAR(counts.mean(), p.mean_events(1500.0),
              5.0 * counts.sem() + 1e-9);
}

TEST(PowerLawProcess, EventsAreSortedWithinHorizon) {
  const PowerLawProcess p(300.0, 0.7);
  rng::RandomStream rs(3);
  for (int i = 0; i < 50; ++i) {
    const auto events = p.simulate(2000.0, rs);
    for (std::size_t k = 0; k < events.size(); ++k) {
      EXPECT_GT(events[k], 0.0);
      EXPECT_LT(events[k], 2000.0);
      if (k) {
        EXPECT_GE(events[k], events[k - 1]);
      }
    }
  }
}

TEST(PowerLawFit, RecoversParametersFromFleet) {
  for (double beta : {0.7, 1.0, 1.6}) {
    const PowerLawProcess truth(800.0, beta);
    const auto fleet = simulate_fleet(truth, 400, 3000.0, 11);
    const auto fit = fit_power_law(fleet);
    ASSERT_TRUE(fit.converged) << beta;
    EXPECT_NEAR(fit.beta, beta, 0.08 * beta) << beta;
    EXPECT_NEAR(fit.eta, 800.0, 0.15 * 800.0) << beta;
  }
}

TEST(PowerLawFit, Validation) {
  EXPECT_THROW(fit_power_law({}), ModelError);
  std::vector<EventHistory> one = {{{5.0}, 10.0}};
  EXPECT_THROW(fit_power_law(one), ModelError);  // < 2 events
  std::vector<EventHistory> bad = {{{11.0, 5.0}, 10.0}};
  EXPECT_THROW(fit_power_law(bad), ModelError);  // event past the window
}

TEST(LaplaceTrend, CentersOnZeroUnderHpp) {
  const PowerLawProcess hpp(100.0, 1.0);
  // Across repeated experiments the statistic is ~N(0,1): check mean and
  // rejection rate.
  int rejects = 0;
  util::RunningStats stats;
  for (int e = 0; e < 120; ++e) {
    const auto fleet = simulate_fleet(hpp, 30, 1000.0, 100 + e);
    const auto t = laplace_trend_test(fleet);
    stats.add(t.statistic);
    if (t.p_value < 0.05) ++rejects;
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.35);
  EXPECT_LE(rejects, 15);  // ~5% nominal, generous band
}

TEST(LaplaceTrend, DetectsIncreasingRocof) {
  const PowerLawProcess growing(800.0, 1.6);
  const auto fleet = simulate_fleet(growing, 100, 3000.0, 21);
  const auto t = laplace_trend_test(fleet);
  EXPECT_GT(t.statistic, 3.0);   // strongly positive
  EXPECT_LT(t.p_value, 0.01);
}

TEST(LaplaceTrend, DetectsDecreasingRocof) {
  const PowerLawProcess improving(200.0, 0.6);
  const auto fleet = simulate_fleet(improving, 100, 3000.0, 22);
  const auto t = laplace_trend_test(fleet);
  EXPECT_LT(t.statistic, -3.0);
  EXPECT_LT(t.p_value, 0.01);
}

TEST(MilHdbkTrend, CalibratedUnderHpp) {
  const PowerLawProcess hpp(150.0, 1.0);
  const auto fleet = simulate_fleet(hpp, 200, 1500.0, 31);
  const auto t = mil_hdbk_trend_test(fleet);
  // Under H0 the statistic ~ chi2(2N): its CDF value is ~ Uniform(0,1),
  // so the one-sided p should not be extreme.
  EXPECT_GT(t.p_value_increasing, 0.001);
  EXPECT_LT(t.p_value_increasing, 0.999);
  EXPECT_EQ(t.dof, 2 * t.events);
}

TEST(MilHdbkTrend, FlagsWearOut) {
  const PowerLawProcess growing(800.0, 1.8);
  const auto fleet = simulate_fleet(growing, 100, 3000.0, 41);
  const auto t = mil_hdbk_trend_test(fleet);
  EXPECT_LT(t.p_value_increasing, 1e-4);
}

TEST(TrendOnSimulatedRaidGroups, DdfProcessIsNotHpp) {
  // The paper's thesis, as a hypothesis test: DDF event streams from the
  // base case (no scrub) reject the HPP null with an increasing trend,
  // and the fitted Crow-AMSAA beta exceeds 1.
  const auto cfg = core::presets::base_case_no_scrub().to_group_config();
  sim::GroupSimulator simulator(cfg);
  rng::StreamFactory streams(51);
  sim::TrialResult out;
  std::vector<EventHistory> fleet;
  for (std::uint64_t g = 0; g < 4000; ++g) {
    auto rs = streams.stream(g);
    simulator.run_trial(rs, out);
    EventHistory h;
    h.observation_end = cfg.mission_hours;
    for (const auto& ddf : out.ddfs) h.times.push_back(ddf.time);
    fleet.push_back(std::move(h));
  }
  const auto laplace = laplace_trend_test(fleet);
  EXPECT_GT(laplace.statistic, 3.0);
  EXPECT_LT(laplace.p_value, 0.01);
  const auto fit = fit_power_law(fleet);
  ASSERT_TRUE(fit.converged);
  EXPECT_GT(fit.beta, 1.05);
}

}  // namespace
}  // namespace raidrel::stats
