// Direct unit tests of the RunResult accumulator using hand-built
// TrialResults (the runner tests cover it end-to-end; these pin the
// bucket arithmetic itself).
#include "sim/run_result.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace raidrel::sim {
namespace {

TrialResult trial_with_ddfs(std::initializer_list<double> times,
                            raid::DdfKind kind) {
  TrialResult t;
  for (double time : times) t.ddfs.push_back({time, kind});
  return t;
}

TEST(RunResult, BucketsEventsByTime) {
  RunResult r(1000.0, 100.0);
  r.add_trial(trial_with_ddfs({50.0, 150.0, 999.0},
                              raid::DdfKind::kDoubleOperational));
  const auto rocof = r.rocof_per_1000();
  ASSERT_EQ(rocof.size(), 10u);
  EXPECT_DOUBLE_EQ(rocof[0], 1000.0);  // one event in one trial, x1000
  EXPECT_DOUBLE_EQ(rocof[1], 1000.0);
  EXPECT_DOUBLE_EQ(rocof[9], 1000.0);
  EXPECT_DOUBLE_EQ(rocof[5], 0.0);
}

TEST(RunResult, BoundaryEventGoesToRightBucket) {
  RunResult r(1000.0, 100.0);
  r.add_trial(trial_with_ddfs({100.0}, raid::DdfKind::kLatentThenOp));
  const auto rocof = r.rocof_per_1000();
  EXPECT_DOUBLE_EQ(rocof[0], 0.0);
  EXPECT_DOUBLE_EQ(rocof[1], 1000.0);
}

TEST(RunResult, NonDividingBucketWidthClipsLastBucket) {
  RunResult r(250.0, 100.0);  // buckets [0,100), [100,200), [200,250]
  EXPECT_EQ(r.bucket_count(), 3u);
  EXPECT_DOUBLE_EQ(r.bucket_edge(0), 100.0);
  EXPECT_DOUBLE_EQ(r.bucket_edge(2), 250.0);
  r.add_trial(trial_with_ddfs({240.0}, raid::DdfKind::kLatentThenOp));
  EXPECT_DOUBLE_EQ(r.rocof_per_1000()[2], 1000.0);
}

TEST(RunResult, ProbeSeriesIndependentOfCounting) {
  RunResult r(1000.0, 100.0);
  TrialResult t;
  t.double_op_probe.emplace_back(50.0, 0.25);
  t.double_op_probe.emplace_back(850.0, 0.5);
  r.add_trial(t);
  EXPECT_DOUBLE_EQ(r.total_ddfs_per_1000(), 0.0);
  EXPECT_DOUBLE_EQ(r.total_ddfs_per_1000(Estimator::kDoubleOpProbe), 750.0);
  const auto cum = r.cumulative_ddfs_per_1000(Estimator::kDoubleOpProbe);
  EXPECT_DOUBLE_EQ(cum[0], 250.0);
  EXPECT_DOUBLE_EQ(cum[7], 250.0);
  EXPECT_DOUBLE_EQ(cum[8], 750.0);
}

TEST(RunResult, PerKindSplit) {
  RunResult r(1000.0, 100.0);
  r.add_trial(trial_with_ddfs({10.0}, raid::DdfKind::kDoubleOperational));
  r.add_trial(trial_with_ddfs({20.0, 30.0}, raid::DdfKind::kLatentThenOp));
  r.add_trial(
      trial_with_ddfs({40.0}, raid::DdfKind::kLatentStripeCollision));
  EXPECT_EQ(r.trials(), 3u);
  const double scale = 1000.0 / 3.0;
  EXPECT_DOUBLE_EQ(r.total_per_1000(raid::DdfKind::kDoubleOperational),
                   1.0 * scale);
  EXPECT_DOUBLE_EQ(r.total_per_1000(raid::DdfKind::kLatentThenOp),
                   2.0 * scale);
  EXPECT_DOUBLE_EQ(r.total_per_1000(raid::DdfKind::kLatentStripeCollision),
                   1.0 * scale);
  EXPECT_DOUBLE_EQ(r.total_ddfs_per_1000(), 4.0 * scale);
}

TEST(RunResult, InterpolationIsPiecewiseLinear) {
  RunResult r(1000.0, 100.0);
  r.add_trial(trial_with_ddfs({150.0}, raid::DdfKind::kLatentThenOp));
  // Cumulative: 0 through bucket 0, 1000 from bucket 1's edge (t=200).
  EXPECT_DOUBLE_EQ(r.ddfs_per_1000_at(100.0), 0.0);
  EXPECT_DOUBLE_EQ(r.ddfs_per_1000_at(200.0), 1000.0);
  EXPECT_DOUBLE_EQ(r.ddfs_per_1000_at(150.0), 500.0);  // mid-bucket
  EXPECT_DOUBLE_EQ(r.ddfs_per_1000_at(1000.0), 1000.0);
}

TEST(RunResult, MergePreservesEverything) {
  RunResult a(1000.0, 100.0), b(1000.0, 100.0);
  a.add_trial(trial_with_ddfs({50.0}, raid::DdfKind::kDoubleOperational));
  TrialResult t = trial_with_ddfs({250.0}, raid::DdfKind::kLatentThenOp);
  t.op_failures = 3;
  t.latent_defects = 7;
  b.add_trial(t);
  a.merge(b);
  EXPECT_EQ(a.trials(), 2u);
  EXPECT_EQ(a.op_failures(), 3u);
  EXPECT_EQ(a.latent_defects(), 7u);
  EXPECT_DOUBLE_EQ(a.total_ddfs_per_1000(), 1000.0);
  EXPECT_DOUBLE_EQ(a.per_trial_ddfs().mean(), 1.0);
  EXPECT_DOUBLE_EQ(a.per_trial_ddfs().variance(), 0.0);
}

TEST(RunResult, GeometryValidation) {
  EXPECT_THROW(RunResult(0.0, 10.0), ModelError);
  EXPECT_THROW(RunResult(100.0, 0.0), ModelError);
  EXPECT_THROW(RunResult(100.0, 200.0), ModelError);
  RunResult r(100.0, 10.0);
  EXPECT_THROW(static_cast<void>(r.bucket_edge(10)), ModelError);
  r.add_trial(TrialResult{});
  EXPECT_THROW(static_cast<void>(r.ddfs_per_1000_at(101.0)), ModelError);
  EXPECT_THROW(static_cast<void>(r.ddfs_per_1000_at(-1.0)), ModelError);
}

}  // namespace
}  // namespace raidrel::sim
