#include "analytic/latent_ddf.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/model.h"
#include "core/presets.h"
#include "stats/weibull.h"
#include "util/error.h"

namespace raidrel::analytic {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

LatentDdfInputs base_inputs(const stats::Weibull& ttop) {
  LatentDdfInputs in;
  in.total_drives = 8;
  in.redundancy = 1;
  in.ttop = &ttop;
  in.latent_rate = 1.0 / 9259.0;
  // E[TTScrub] for Weibull(6, 168, 3): 6 + 168*Gamma(4/3).
  in.mean_scrub_residence = stats::Weibull(6.0, 168.0, 3.0).mean();
  in.mean_restore = stats::Weibull(6.0, 12.0, 2.0).mean();
  return in;
}

TEST(LatentDdf, SteadyStateDefectiveProbability) {
  const stats::Weibull ttop(0.0, 461386.0, 1.12);
  const auto in = base_inputs(ttop);
  // lambda*E[S] ~ 156/9259 ~ 0.0166 -> q_ss ~ 0.0163.
  const double q_ss = defective_probability_steady_state(in);
  EXPECT_NEAR(q_ss, (156.0 / 9259.0) / (1.0 + 156.0 / 9259.0), 1e-3);
  // The transient reaches steady state within a few scrub residences.
  EXPECT_NEAR(defective_probability(in, 2000.0), q_ss, 1e-4);
  EXPECT_LT(defective_probability(in, 50.0), q_ss);
  EXPECT_DOUBLE_EQ(defective_probability(in, 0.0), 0.0);
}

TEST(LatentDdf, NoScrubDefectiveProbabilityIsCdf) {
  const stats::Weibull ttop(0.0, 461386.0, 1.12);
  auto in = base_inputs(ttop);
  in.mean_scrub_residence = kInf;
  EXPECT_NEAR(defective_probability(in, 9259.0), 1.0 - std::exp(-1.0),
              1e-12);
  EXPECT_DOUBLE_EQ(defective_probability_steady_state(in), 1.0);
}

TEST(LatentDdf, IntensityIncreasesWithDefectRate) {
  const stats::Weibull ttop(0.0, 461386.0, 1.12);
  auto lo = base_inputs(ttop);
  auto hi = base_inputs(ttop);
  hi.latent_rate = 10.0 * lo.latent_rate;
  EXPECT_GT(ddf_intensity(hi, 5000.0), 5.0 * ddf_intensity(lo, 5000.0));
}

TEST(LatentDdf, MatchesMonteCarloBaseCase) {
  // The analytic estimate and the simulator must agree on the paper's
  // base case (the analytic model's assumptions hold there).
  const stats::Weibull ttop(0.0, 461386.0, 1.12);
  const auto in = base_inputs(ttop);
  const double analytic = expected_latent_ddfs(in, 87600.0, 1000.0);
  const auto mc = core::evaluate_scenario(core::presets::base_case(),
                                          {.trials = 20000, .seed = 77});
  const double simulated = mc.run.total_ddfs_per_1000();
  EXPECT_NEAR(analytic / simulated, 1.0, 0.12)
      << "analytic=" << analytic << " simulated=" << simulated;
}

TEST(LatentDdf, MatchesMonteCarloFirstYear) {
  const stats::Weibull ttop(0.0, 461386.0, 1.12);
  const auto in = base_inputs(ttop);
  const double analytic = expected_latent_ddfs(in, 8760.0, 1000.0);
  const auto mc = core::evaluate_scenario(core::presets::base_case(),
                                          {.trials = 60000, .seed = 78});
  const double simulated = mc.run.ddfs_per_1000_at(8760.0);
  EXPECT_NEAR(analytic / simulated, 1.0, 0.2)
      << "analytic=" << analytic << " simulated=" << simulated;
}

TEST(LatentDdf, NoScrubApproachesMonteCarloDespiteResets) {
  // Without scrubbing the simulator's post-DDF state-1 reset matters; the
  // analytic value (which ignores resets) should sit at or above the
  // simulated one, within ~25%.
  const stats::Weibull ttop(0.0, 461386.0, 1.12);
  auto in = base_inputs(ttop);
  in.mean_scrub_residence = kInf;
  const double analytic = expected_latent_ddfs(in, 87600.0, 1000.0);
  const auto mc = core::evaluate_scenario(core::presets::base_case_no_scrub(),
                                          {.trials = 10000, .seed = 79});
  const double simulated = mc.run.total_ddfs_per_1000();
  EXPECT_GT(analytic, 0.8 * simulated);
  EXPECT_LT(analytic, 1.35 * simulated);
}

TEST(LatentDdf, DoubleOpTermMatchesMttdlWhenExponential) {
  // With no latent contribution (rate -> tiny) and beta = 1, the op term
  // integrates to ~ the MTTDL prediction.
  const stats::Weibull ttop(0.0, 461386.0, 1.0);
  auto in = base_inputs(ttop);
  in.latent_rate = 1e-12;  // effectively off
  in.mean_restore = 12.0;
  const double analytic = expected_latent_ddfs(in, 87600.0, 1000.0);
  const double mttdl = expected_ddfs({7, 461386.0, 12.0}, 87600.0, 1000.0);
  EXPECT_NEAR(analytic / mttdl, 1.0, 0.02);
}

TEST(LatentDdf, Raid6IntensityFarBelowRaid5) {
  const stats::Weibull ttop(0.0, 461386.0, 1.12);
  auto r5 = base_inputs(ttop);
  auto r6 = base_inputs(ttop);
  r6.total_drives = 10;
  r6.redundancy = 2;
  const double i5 = expected_latent_ddfs(r5, 87600.0, 1000.0);
  const double i6 = expected_latent_ddfs(r6, 87600.0, 1000.0);
  EXPECT_LT(i6, 0.2 * i5);
}

TEST(LatentDdf, Validation) {
  const stats::Weibull ttop(0.0, 461386.0, 1.12);
  auto in = base_inputs(ttop);
  in.ttop = nullptr;
  EXPECT_THROW(ddf_intensity(in, 10.0), ModelError);
  auto bad = base_inputs(ttop);
  bad.latent_rate = 0.0;
  EXPECT_THROW(defective_probability(bad, 10.0), ModelError);
  auto bad2 = base_inputs(ttop);
  bad2.redundancy = 8;
  EXPECT_THROW(ddf_intensity(bad2, 10.0), ModelError);
}

}  // namespace
}  // namespace raidrel::analytic
