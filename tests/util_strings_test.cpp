#include "util/strings.h"

#include <gtest/gtest.h>

namespace raidrel::util {
namespace {

TEST(FormatFixed, RoundsAtRequestedDigits) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(3.145, 2), "3.15");  // round-half-away on glibc
  EXPECT_EQ(format_fixed(-1.0, 0), "-1");
}

TEST(FormatSci, ProducesScientific) {
  EXPECT_EQ(format_sci(1.08e-4, 2), "1.08e-04");
  EXPECT_EQ(format_sci(461386.0, 3), "4.614e+05");
}

TEST(FormatGeneral, SwitchesNotation) {
  EXPECT_EQ(format_general(0.0), "0");
  EXPECT_EQ(format_general(12.5, 4), "12.5");
  EXPECT_EQ(format_general(1.08e-9, 3), "1.08e-09");
  EXPECT_EQ(format_general(4.5e8, 3), "4.50e+08");
}

TEST(FormatGrouped, InsertsThousandsSeparators) {
  EXPECT_EQ(format_grouped(0), "0");
  EXPECT_EQ(format_grouped(999), "999");
  EXPECT_EQ(format_grouped(461386), "461,386");
  EXPECT_EQ(format_grouped(-1234567), "-1,234,567");
}

TEST(Padding, LeftAndRight) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcdef", 4), "abcdef");  // never truncates
}

TEST(SplitJoin, RoundTrips) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join(parts, ","), "a,b,,c");
}

TEST(Split, NoDelimiter) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

}  // namespace
}  // namespace raidrel::util
