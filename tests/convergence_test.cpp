#include "sim/convergence.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "stats/basic_distributions.h"
#include "stats/weibull.h"
#include "util/error.h"

namespace raidrel::sim {
namespace {

raid::GroupConfig busy_group() {
  raid::SlotModel m;
  m.time_to_op_failure = std::make_unique<stats::Weibull>(0.0, 4000.0, 1.2);
  m.time_to_restore = std::make_unique<stats::Weibull>(6.0, 100.0, 2.0);
  m.time_to_latent_defect = std::make_unique<stats::Weibull>(0.0, 2000.0, 1.0);
  m.time_to_scrub = std::make_unique<stats::Weibull>(6.0, 300.0, 3.0);
  return raid::make_uniform_group(8, 1, m, 20000.0);
}

// A configuration that cannot lose data within the mission: no latent
// defects, and drives that outlive the horizon by ten orders of magnitude.
raid::GroupConfig immortal_group() {
  raid::SlotModel m;
  m.time_to_op_failure = std::make_unique<stats::Degenerate>(1e18);
  m.time_to_restore = std::make_unique<stats::Degenerate>(10.0);
  return raid::make_uniform_group(4, 1, m, 20000.0);
}

TEST(Convergence, ReachesTargetOnBusyScenario) {
  ConvergenceOptions opt;
  opt.target_relative_sem = 0.05;
  opt.batch_trials = 500;
  opt.min_trials = 500;
  opt.max_trials = 100000;
  opt.seed = 1;
  const auto run = run_until_converged(busy_group(), opt);
  EXPECT_TRUE(run.converged);
  EXPECT_EQ(run.stop, ConvergedRun::StopRule::kRelativeSem);
  EXPECT_LE(run.relative_sem, 0.05);
  EXPECT_GT(run.absolute_sem, 0.0);
  EXPECT_GE(run.batches, 1u);
  EXPECT_LE(run.result.trials(), opt.max_trials);
}

TEST(Convergence, ZeroDdfConfigStopsByRuleOfThree) {
  // A config that never loses data has mean 0 and relative SEM infinity;
  // the zero-event rule must stop the loop once the rule-of-three upper
  // bound (3000/n DDFs per 1000) reaches the requested resolution instead
  // of spinning to max_trials. With the default bound 0.05 that is
  // exactly 60000 trials.
  ConvergenceOptions opt;
  opt.batch_trials = 5000;
  opt.min_trials = 5000;
  opt.max_trials = 2000000;
  opt.seed = 5;
  const auto run = run_until_converged(immortal_group(), opt);
  EXPECT_TRUE(run.converged);
  EXPECT_EQ(run.stop, ConvergedRun::StopRule::kZeroDdf);
  EXPECT_EQ(run.result.trials(), 60000u);
  EXPECT_EQ(run.result.total_ddfs_per_1000(), 0.0);
  EXPECT_EQ(run.absolute_sem, 0.0);
  EXPECT_TRUE(std::isinf(run.relative_sem));
}

TEST(Convergence, ZeroDdfRuleCanBeDisabled) {
  // Opting out (bound = 0) recovers the old run-out-the-budget behavior.
  ConvergenceOptions opt;
  opt.zero_ddf_upper_bound = 0.0;
  opt.batch_trials = 1000;
  opt.min_trials = 1000;
  opt.max_trials = 2000;
  opt.seed = 6;
  const auto run = run_until_converged(immortal_group(), opt);
  EXPECT_FALSE(run.converged);
  EXPECT_EQ(run.stop, ConvergedRun::StopRule::kBudget);
  EXPECT_EQ(run.result.trials(), 2000u);
}

TEST(Convergence, AbsoluteSemTargetStops) {
  // A generous absolute target stops the loop even when the relative
  // target is unreachable.
  ConvergenceOptions opt;
  opt.target_relative_sem = 1e-9;
  opt.target_absolute_sem = 1e9;
  opt.batch_trials = 500;
  opt.min_trials = 500;
  opt.max_trials = 100000;
  opt.seed = 7;
  const auto run = run_until_converged(busy_group(), opt);
  EXPECT_TRUE(run.converged);
  EXPECT_EQ(run.stop, ConvergedRun::StopRule::kAbsoluteSem);
  EXPECT_EQ(run.result.trials(), 500u);
  EXPECT_LE(run.absolute_sem, 1e9);
}

TEST(Convergence, RelativeTargetWinsOverAbsolute) {
  // Both targets are trivially satisfiable in the first batch; the loop
  // checks relative first, so that is the rule reported.
  ConvergenceOptions opt;
  opt.target_relative_sem = 10.0;
  opt.target_absolute_sem = 1e9;
  opt.batch_trials = 500;
  opt.min_trials = 500;
  opt.max_trials = 100000;
  opt.seed = 11;
  const auto run = run_until_converged(busy_group(), opt);
  ASSERT_TRUE(run.converged);
  EXPECT_EQ(run.stop, ConvergedRun::StopRule::kRelativeSem);
  EXPECT_EQ(run.result.trials(), 500u);
}

TEST(Convergence, AbsoluteTargetWinsOverZeroDdf) {
  // On a zero-DDF config the relative SEM is infinite, so the relative
  // rule can never fire. With a 60000-trial batch the rule-of-three bound
  // (3000/n = 0.05) is satisfied at the same check as a generous absolute
  // target (SEM 0) — the absolute rule is checked first and must win.
  ConvergenceOptions opt;
  opt.target_relative_sem = 1e-9;
  opt.target_absolute_sem = 1e9;
  opt.zero_ddf_upper_bound = 0.05;
  opt.batch_trials = 60000;
  opt.min_trials = 60000;
  opt.max_trials = 200000;
  opt.seed = 12;
  const auto run = run_until_converged(immortal_group(), opt);
  ASSERT_TRUE(run.converged);
  EXPECT_EQ(run.stop, ConvergedRun::StopRule::kAbsoluteSem);
  EXPECT_EQ(run.result.trials(), 60000u);
  EXPECT_TRUE(std::isinf(run.relative_sem));
}

TEST(Convergence, MinTrialsGatesEveryStopRule) {
  // A trivially satisfiable relative target still may not stop the run
  // before min_trials accumulate.
  ConvergenceOptions opt;
  opt.target_relative_sem = 10.0;
  opt.batch_trials = 500;
  opt.min_trials = 1500;
  opt.max_trials = 100000;
  opt.seed = 13;
  const auto run = run_until_converged(busy_group(), opt);
  ASSERT_TRUE(run.converged);
  EXPECT_EQ(run.stop, ConvergedRun::StopRule::kRelativeSem);
  EXPECT_EQ(run.result.trials(), 1500u);
  EXPECT_EQ(run.batches, 3u);
}

TEST(Convergence, MinTrialsFloorBeatsAbsoluteSemOnWideBatches) {
  // A batch wider than the remaining distance to the floor must not let
  // the absolute-SEM rule stop below min_trials: the floor is checked
  // before every rule, so the loop takes a second batch and stops at
  // 4000, not 2000.
  ConvergenceOptions opt;
  opt.target_relative_sem = 1e-9;
  opt.target_absolute_sem = 1e9;
  opt.batch_trials = 2000;
  opt.min_trials = 2500;
  opt.max_trials = 100000;
  opt.seed = 14;
  const auto run = run_until_converged(busy_group(), opt);
  ASSERT_TRUE(run.converged);
  EXPECT_EQ(run.stop, ConvergedRun::StopRule::kAbsoluteSem);
  EXPECT_EQ(run.result.trials(), 4000u);
  EXPECT_EQ(run.batches, 2u);
}

TEST(Convergence, MinTrialsBucketEdgeStopsExactlyAtFloor) {
  // Boundary case: the floor lands exactly on a batch edge — the first
  // batch satisfies trials >= min_trials and the generous target stops
  // the loop right there.
  ConvergenceOptions opt;
  opt.target_relative_sem = 1e-9;
  opt.target_absolute_sem = 1e9;
  opt.batch_trials = 2000;
  opt.min_trials = 2000;
  opt.max_trials = 100000;
  opt.seed = 14;
  const auto run = run_until_converged(busy_group(), opt);
  ASSERT_TRUE(run.converged);
  EXPECT_EQ(run.stop, ConvergedRun::StopRule::kAbsoluteSem);
  EXPECT_EQ(run.result.trials(), 2000u);
  EXPECT_EQ(run.batches, 1u);
}

TEST(Convergence, EssTargetStops) {
  // Untilted runs have ESS exactly equal to the trial count, which makes
  // the ESS rule's arithmetic exactly checkable: target 1200 with
  // 500-trial batches stops at 1500.
  ConvergenceOptions opt;
  opt.target_relative_sem = 1e-9;
  opt.target_ess = 1200.0;
  opt.batch_trials = 500;
  opt.min_trials = 500;
  opt.max_trials = 100000;
  opt.seed = 15;
  const auto run = run_until_converged(busy_group(), opt);
  ASSERT_TRUE(run.converged);
  EXPECT_EQ(run.stop, ConvergedRun::StopRule::kEss);
  EXPECT_EQ(run.result.trials(), 1500u);
  EXPECT_DOUBLE_EQ(run.ess, 1500.0);
}

TEST(Convergence, AbsoluteTargetWinsOverEss) {
  // Both rules are satisfiable in the first round; absolute SEM has the
  // higher precedence.
  ConvergenceOptions opt;
  opt.target_relative_sem = 1e-9;
  opt.target_absolute_sem = 1e9;
  opt.target_ess = 100.0;
  opt.batch_trials = 500;
  opt.min_trials = 500;
  opt.max_trials = 100000;
  opt.seed = 16;
  const auto run = run_until_converged(busy_group(), opt);
  ASSERT_TRUE(run.converged);
  EXPECT_EQ(run.stop, ConvergedRun::StopRule::kAbsoluteSem);
  EXPECT_EQ(run.result.trials(), 500u);
}

TEST(Convergence, StopRuleNames) {
  EXPECT_STREQ(to_string(ConvergedRun::StopRule::kBudget), "budget");
  EXPECT_STREQ(to_string(ConvergedRun::StopRule::kRelativeSem),
               "relative-sem");
  EXPECT_STREQ(to_string(ConvergedRun::StopRule::kAbsoluteSem),
               "absolute-sem");
  EXPECT_STREQ(to_string(ConvergedRun::StopRule::kEss), "ess");
  EXPECT_STREQ(to_string(ConvergedRun::StopRule::kZeroDdf), "zero-ddf");
}

TEST(Convergence, StopsAtBudgetWhenTargetUnreachable) {
  ConvergenceOptions opt;
  opt.target_relative_sem = 1e-6;  // unreachable at this budget
  opt.batch_trials = 500;
  opt.min_trials = 500;
  opt.max_trials = 2000;
  opt.seed = 2;
  const auto run = run_until_converged(busy_group(), opt);
  EXPECT_FALSE(run.converged);
  EXPECT_EQ(run.result.trials(), 2000u);
  EXPECT_EQ(run.batches, 4u);
}

TEST(Convergence, BatchedUnionEqualsSingleRun) {
  // Disjoint stream-index batches must reproduce one big run exactly
  // (counting statistics are integer sums).
  const auto cfg = busy_group();
  ConvergenceOptions opt;
  opt.target_relative_sem = 1e-9;  // force it to run out the budget
  opt.batch_trials = 300;
  opt.min_trials = 300;
  opt.max_trials = 900;
  opt.seed = 3;
  const auto batched = run_until_converged(cfg, opt);
  const auto single = run_monte_carlo(
      cfg, {.trials = 900, .seed = 3, .threads = 0, .bucket_hours = 730.0});
  EXPECT_DOUBLE_EQ(batched.result.total_ddfs_per_1000(),
                   single.total_ddfs_per_1000());
  EXPECT_EQ(batched.result.op_failures(), single.op_failures());
  EXPECT_EQ(batched.result.latent_defects(), single.latent_defects());
}

TEST(Convergence, MoreDemandingTargetUsesMoreTrials) {
  const auto cfg = busy_group();
  ConvergenceOptions loose;
  loose.target_relative_sem = 0.10;
  loose.batch_trials = 100;
  loose.min_trials = 100;
  loose.max_trials = 100000;
  loose.seed = 4;
  ConvergenceOptions tight = loose;
  tight.target_relative_sem = 0.005;
  const auto a = run_until_converged(cfg, loose);
  const auto b = run_until_converged(cfg, tight);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  EXPECT_LT(a.result.trials(), b.result.trials());
}

TEST(Convergence, Validation) {
  ConvergenceOptions opt;
  opt.target_relative_sem = 0.0;
  EXPECT_THROW(run_until_converged(busy_group(), opt), ModelError);
  opt = {};
  opt.min_trials = 100;
  opt.max_trials = 50;
  EXPECT_THROW(run_until_converged(busy_group(), opt), ModelError);
  opt = {};
  opt.target_absolute_sem = -1.0;
  EXPECT_THROW(run_until_converged(busy_group(), opt), ModelError);
  opt = {};
  opt.zero_ddf_upper_bound = -0.1;
  EXPECT_THROW(run_until_converged(busy_group(), opt), ModelError);
  opt = {};
  opt.target_ess = -1.0;
  EXPECT_THROW(run_until_converged(busy_group(), opt), ModelError);
}

}  // namespace
}  // namespace raidrel::sim
