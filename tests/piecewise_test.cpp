#include "stats/piecewise.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/basic_distributions.h"
#include "util/error.h"
#include "util/math.h"
#include "workload/duty_cycle.h"

namespace raidrel::stats {
namespace {

PiecewiseConstantHazard two_phase() {
  // 0.01/h for 100 h, then 0.001/h.
  return PiecewiseConstantHazard({{0.0, 0.01}, {100.0, 0.001}});
}

TEST(PiecewiseHazard, SingleSegmentIsExponential) {
  const PiecewiseConstantHazard p({{0.0, 0.02}});
  const Exponential e(0.02);
  for (double t : {1.0, 50.0, 300.0}) {
    EXPECT_NEAR(p.cdf(t), e.cdf(t), 1e-12) << t;
    EXPECT_NEAR(p.pdf(t), e.pdf(t), 1e-12) << t;
    EXPECT_DOUBLE_EQ(p.hazard(t), 0.02);
  }
}

TEST(PiecewiseHazard, HazardStepsAtBreakpoints) {
  const auto p = two_phase();
  EXPECT_DOUBLE_EQ(p.hazard(99.9), 0.01);
  EXPECT_DOUBLE_EQ(p.hazard(100.0), 0.001);
  EXPECT_DOUBLE_EQ(p.hazard(1e6), 0.001);
}

TEST(PiecewiseHazard, CumHazardPiecewiseLinear) {
  const auto p = two_phase();
  EXPECT_NEAR(p.cum_hazard(50.0), 0.5, 1e-12);
  EXPECT_NEAR(p.cum_hazard(100.0), 1.0, 1e-12);
  EXPECT_NEAR(p.cum_hazard(300.0), 1.0 + 0.2, 1e-12);
  EXPECT_NEAR(p.survival(300.0), std::exp(-1.2), 1e-12);
}

TEST(PiecewiseHazard, QuantileInvertsCdf) {
  const auto p = two_phase();
  for (double prob : {0.01, 0.3, 0.632, 0.8, 0.99}) {
    EXPECT_NEAR(p.cdf(p.quantile(prob)), prob, 1e-10) << prob;
  }
}

TEST(PiecewiseHazard, InverseCumHazardCrossesSegments) {
  const auto p = two_phase();
  EXPECT_NEAR(p.inverse_cum_hazard(0.5), 50.0, 1e-9);
  EXPECT_NEAR(p.inverse_cum_hazard(1.0), 100.0, 1e-9);
  EXPECT_NEAR(p.inverse_cum_hazard(1.1), 200.0, 1e-9);
}

TEST(PiecewiseHazard, ZeroRateLeadingSegment) {
  // No defects possible while idle, then a constant rate.
  const PiecewiseConstantHazard p({{0.0, 0.0}, {100.0, 0.01}});
  EXPECT_DOUBLE_EQ(p.cdf(100.0), 0.0);
  EXPECT_GT(p.cdf(150.0), 0.0);
  rng::RandomStream rs(1);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(p.sample(rs), 100.0);
  }
}

TEST(PiecewiseHazard, SampleCountsMatchRatePerPhase) {
  // Use the law as a renewal-process generator: event counts inside each
  // phase must match the phase intensity.
  const auto p = two_phase();
  rng::RandomStream rs(2);
  int early = 0, late = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double t = p.sample(rs);
    if (t < 100.0) {
      ++early;
    } else {
      ++late;
    }
  }
  // P(T < 100) = 1 - exp(-1).
  EXPECT_NEAR(static_cast<double>(early) / n, 1.0 - std::exp(-1.0), 0.006);
  EXPECT_EQ(early + late, n);
}

TEST(PiecewiseHazard, ResidualSamplingUsesCurrentPhase) {
  const auto p = two_phase();
  rng::RandomStream rs(3);
  // Past the breakpoint the law is memoryless at the low rate.
  util::RunningStats residual;
  for (int i = 0; i < 50000; ++i) {
    residual.add(p.sample_residual(200.0, rs));
  }
  EXPECT_NEAR(residual.mean(), 1000.0, 15.0);
}

TEST(PiecewiseHazard, Validation) {
  using Seg = PiecewiseConstantHazard::Segment;
  EXPECT_THROW(PiecewiseConstantHazard({}), ModelError);
  EXPECT_THROW(PiecewiseConstantHazard({Seg{5.0, 0.1}}), ModelError);
  EXPECT_THROW(PiecewiseConstantHazard({Seg{0.0, 0.1}, Seg{0.0, 0.2}}),
               ModelError);
  EXPECT_THROW(PiecewiseConstantHazard({Seg{0.0, -0.1}}), ModelError);
  EXPECT_THROW(PiecewiseConstantHazard({Seg{0.0, 0.0}}), ModelError);
}

TEST(DutyCycle, ProfileToLatentLaw) {
  const auto profile = workload::ingest_then_archive_profile();
  const auto law = workload::ttld_from_profile(profile, 8.0e-14);
  // Ingest phase: 8e-14 * 1.35e10 = 1.08e-3/h; archive: 1.08e-4/h.
  EXPECT_NEAR(law.hazard(1000.0), 1.08e-3, 1e-9);
  EXPECT_NEAR(law.hazard(20000.0), 1.08e-4, 1e-10);
}

TEST(DutyCycle, AverageVolumeWeightsPhases) {
  const auto profile = workload::ingest_then_archive_profile();
  // One year at 1.35e10 + nine at 1.35e9, averaged over ten years.
  const double avg = profile.average_bytes_per_hour(87600.0);
  EXPECT_NEAR(avg, (1.35e10 * 8760.0 + 1.35e9 * 78840.0) / 87600.0,
              1e-3 * avg);
}

TEST(DutyCycle, ProfileValidation) {
  workload::DutyCycleProfile bad{"bad", {{"p", 10.0, 1.0}}};
  EXPECT_THROW(bad.validate(), ModelError);
  workload::DutyCycleProfile zero{"zero", {{"p", 0.0, 0.0}}};
  EXPECT_THROW(zero.validate(), ModelError);
  EXPECT_THROW(workload::steady_profile(0.0), ModelError);
}

}  // namespace
}  // namespace raidrel::stats
