#include <sstream>

#include <gtest/gtest.h>

#include "report/ascii_chart.h"
#include "report/table.h"
#include "util/error.h"

namespace raidrel::report {
namespace {

TEST(Table, TextRenderingAligns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"bb", "22"});
  std::ostringstream os;
  t.print_text(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Columns aligned: "alpha" and "bb" rows have the value at the same
  // column offset.
  const auto lines = [&] {
    std::vector<std::string> v;
    std::istringstream is(out);
    std::string line;
    while (std::getline(is, line)) v.push_back(line);
    return v;
  }();
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[2].find('1'), lines[3].find('2'));
}

TEST(Table, MarkdownRendering) {
  Table t({"a", "b"});
  t.add_row({"x", "y"});
  std::ostringstream os;
  t.print_markdown(os);
  EXPECT_EQ(os.str(), "| a | b |\n|---|---|\n| x | y |\n");
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"a", "b"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"quote\"inside", "multi\nline"});
  std::ostringstream os;
  t.print_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Table, NumericRowFormatting) {
  Table t({"x", "y", "z"});
  t.add_row_numeric({1.0, 0.000123456, 461386.0}, 3);
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cell(0, 0), "1");
  EXPECT_NE(t.cell(0, 1).find("e-"), std::string::npos);
}

TEST(Table, RejectsBadShapes) {
  EXPECT_THROW(Table({}), ModelError);
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ModelError);
  EXPECT_THROW(static_cast<void>(t.cell(0, 0)), ModelError);
}

TEST(AsciiChart, PlotsSeriesWithinBounds) {
  AsciiChart chart({.width = 40, .height = 10, .x_label = "t",
                    .y_label = "ddf"});
  chart.add_series("rising", {0.0, 1.0, 2.0, 3.0}, {0.0, 1.0, 4.0, 9.0}, '*');
  chart.add_series("flat", {0.0, 3.0}, {2.0, 2.0}, 'o');
  std::ostringstream os;
  chart.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find("rising"), std::string::npos);
}

TEST(AsciiChart, LogAxesDropNonPositives) {
  AsciiChart chart({.width = 40, .height = 8, .log_x = true, .log_y = true});
  chart.add_series("s", {0.0, 10.0, 100.0}, {0.0, 1.0, 100.0}, '+');
  std::ostringstream os;
  chart.print(os);  // must not throw on the zero point
  EXPECT_NE(os.str().find('+'), std::string::npos);
}

TEST(AsciiChart, ValidatesInput) {
  EXPECT_THROW(AsciiChart({.width = 2, .height = 2}), ModelError);
  AsciiChart chart({.width = 40, .height = 8});
  EXPECT_THROW(chart.add_series("bad", {1.0}, {1.0, 2.0}, 'x'), ModelError);
  std::ostringstream os;
  EXPECT_THROW(chart.print(os), ModelError);  // nothing to plot
}

TEST(AsciiChart, ConstantSeriesDoesNotDivideByZero) {
  AsciiChart chart({.width = 40, .height = 8});
  chart.add_series("const", {1.0, 2.0}, {5.0, 5.0}, '#');
  std::ostringstream os;
  EXPECT_NO_THROW(chart.print(os));
}

}  // namespace
}  // namespace raidrel::report
