#include "stats/bootstrap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "stats/fit.h"
#include "stats/weibull.h"
#include "util/error.h"

namespace raidrel::stats {
namespace {

double mean_time(const LifeData& d) {
  double s = 0.0;
  for (const auto& o : d) s += o.time;
  return s / static_cast<double>(d.size());
}

TEST(Bootstrap, CiBracketsPointEstimate) {
  rng::RandomStream gen(1);
  const Weibull w(0.0, 100.0, 2.0);
  LifeData data;
  for (int i = 0; i < 500; ++i) data.push_back({w.sample(gen), true});
  rng::RandomStream rs(2);
  const auto ci = bootstrap_ci(data, mean_time, 500, 0.95, rs);
  EXPECT_LE(ci.lower, ci.point);
  EXPECT_GE(ci.upper, ci.point);
  EXPECT_GT(ci.upper - ci.lower, 0.0);
  EXPECT_EQ(ci.replicates, 500u);
}

TEST(Bootstrap, CiCoversTrueMeanAtNominalRate) {
  // Repeat the experiment and check coverage is near 95%.
  const Weibull w(0.0, 100.0, 2.0);
  const double true_mean = w.mean();
  int covered = 0;
  const int experiments = 60;
  for (int e = 0; e < experiments; ++e) {
    rng::RandomStream gen(100 + e);
    LifeData data;
    for (int i = 0; i < 200; ++i) data.push_back({w.sample(gen), true});
    rng::RandomStream rs(1000 + e);
    const auto ci = bootstrap_ci(data, mean_time, 300, 0.95, rs);
    covered += (ci.lower <= true_mean && true_mean <= ci.upper) ? 1 : 0;
  }
  // Binomial(60, 0.95): >= 50 successes with overwhelming probability.
  EXPECT_GE(covered, 50);
}

TEST(Bootstrap, WiderIntervalForSmallerSample) {
  const Weibull w(0.0, 100.0, 1.5);
  rng::RandomStream gen(7);
  LifeData small, large;
  for (int i = 0; i < 50; ++i) small.push_back({w.sample(gen), true});
  for (int i = 0; i < 2000; ++i) large.push_back({w.sample(gen), true});
  rng::RandomStream rs1(8), rs2(9);
  const auto ci_small = bootstrap_ci(small, mean_time, 400, 0.95, rs1);
  const auto ci_large = bootstrap_ci(large, mean_time, 400, 0.95, rs2);
  EXPECT_GT(ci_small.upper - ci_small.lower,
            ci_large.upper - ci_large.lower);
}

TEST(Bootstrap, WorksWithWeibullBetaStatistic) {
  // Bootstrap the fitted shape parameter of censored data — the statistic
  // EXPERIMENTS.md reports with uncertainty.
  const Weibull w(0.0, 1000.0, 1.4);
  rng::RandomStream gen(11);
  LifeData data;
  for (int i = 0; i < 400; ++i) {
    const double t = w.sample(gen);
    data.push_back(t < 1500.0 ? LifeObservation{t, true}
                              : LifeObservation{1500.0, false});
  }
  rng::RandomStream rs(12);
  const auto ci = bootstrap_ci(
      data, [](const LifeData& d) { return fit_weibull_mle(d).params.beta; },
      300, 0.90, rs);
  EXPECT_GT(ci.lower, 0.9);
  EXPECT_LT(ci.upper, 2.1);
  EXPECT_LE(ci.lower, 1.4);
  EXPECT_GE(ci.upper, 1.4);
}

TEST(Bootstrap, InterpolatedPercentileMatchesTypeSevenReference) {
  // Pin the interval to the documented procedure: resample with
  // uniform_index in declaration order, then the linearly interpolated
  // ("type 7") order statistic at alpha and 1 - alpha. The old
  // truncating index could only ever return an order statistic itself;
  // at 25 replicates and level 0.90 the exact quantile position is
  // h = 0.05 * 24 = 1.2, strictly between the 2nd and 3rd.
  const Weibull w(0.0, 50.0, 1.3);
  rng::RandomStream gen(21);
  LifeData data;
  for (int i = 0; i < 40; ++i) data.push_back({w.sample(gen), true});

  rng::RandomStream rs(22);
  const auto ci = bootstrap_ci(data, mean_time, 25, 0.90, rs);

  rng::RandomStream ref(22);
  std::vector<double> stats;
  LifeData resample(data.size());
  for (int b = 0; b < 25; ++b) {
    for (auto& slot : resample) slot = data[ref.uniform_index(data.size())];
    stats.push_back(mean_time(resample));
  }
  std::sort(stats.begin(), stats.end());
  const auto type7 = [&](double q) {
    const double h = q * (static_cast<double>(stats.size()) - 1.0);
    const auto lo = static_cast<std::size_t>(h);
    const auto hi = std::min(lo + 1, stats.size() - 1);
    return stats[lo] + (h - static_cast<double>(lo)) * (stats[hi] - stats[lo]);
  };
  EXPECT_DOUBLE_EQ(ci.lower, type7(0.05));
  EXPECT_DOUBLE_EQ(ci.upper, type7(0.95));
  EXPECT_GT(ci.lower, stats[1]);
  EXPECT_LT(ci.lower, stats[2]);
  EXPECT_GT(ci.upper, stats[22]);
  EXPECT_LT(ci.upper, stats[23]);
}

TEST(Bootstrap, DegenerateDataPinsInterval) {
  // One observation: every resample is identical, so the interval is a
  // point regardless of level or replicate count.
  LifeData data{{5.0, true}};
  rng::RandomStream rs(3);
  const auto ci = bootstrap_ci(data, mean_time, 50, 0.95, rs);
  EXPECT_DOUBLE_EQ(ci.point, 5.0);
  EXPECT_DOUBLE_EQ(ci.lower, 5.0);
  EXPECT_DOUBLE_EQ(ci.upper, 5.0);
}

TEST(Bootstrap, ValidatesArguments) {
  rng::RandomStream rs(1);
  LifeData data{{1.0, true}};
  EXPECT_THROW(bootstrap_ci({}, mean_time, 100, 0.95, rs), ModelError);
  EXPECT_THROW(bootstrap_ci(data, mean_time, 5, 0.95, rs), ModelError);
  EXPECT_THROW(bootstrap_ci(data, mean_time, 100, 1.5, rs), ModelError);
}

}  // namespace
}  // namespace raidrel::stats
