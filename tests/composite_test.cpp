#include "stats/composite.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/basic_distributions.h"
#include "stats/weibull.h"
#include "util/error.h"
#include "util/math.h"

namespace raidrel::stats {
namespace {

MixtureDistribution two_weibull_mixture(double w1, WeibullParams p1,
                                        double w2, WeibullParams p2) {
  std::vector<MixtureDistribution::Component> comps;
  comps.push_back({w1, std::make_unique<Weibull>(p1)});
  comps.push_back({w2, std::make_unique<Weibull>(p2)});
  return MixtureDistribution(std::move(comps));
}

TEST(Mixture, WeightsNormalized) {
  auto m = two_weibull_mixture(2.0, {0.0, 100.0, 1.0}, 6.0, {0.0, 10.0, 1.0});
  EXPECT_DOUBLE_EQ(m.weight(0), 0.25);
  EXPECT_DOUBLE_EQ(m.weight(1), 0.75);
}

TEST(Mixture, CdfIsWeightedAverage) {
  auto m = two_weibull_mixture(0.3, {0.0, 100.0, 1.0}, 0.7, {0.0, 10.0, 2.0});
  const Weibull a(0.0, 100.0, 1.0), b(0.0, 10.0, 2.0);
  for (double t : {1.0, 5.0, 20.0, 80.0}) {
    EXPECT_NEAR(m.cdf(t), 0.3 * a.cdf(t) + 0.7 * b.cdf(t), 1e-12) << t;
    EXPECT_NEAR(m.survival(t), 1.0 - m.cdf(t), 1e-12) << t;
  }
}

TEST(Mixture, MeanIsWeightedAverage) {
  auto m = two_weibull_mixture(0.5, {0.0, 100.0, 1.0}, 0.5, {0.0, 10.0, 1.0});
  EXPECT_NEAR(m.mean(), 55.0, 1e-9);
}

TEST(Mixture, QuantileInvertsCdf) {
  auto m = two_weibull_mixture(0.15, {0.0, 5.0e4, 0.9}, 0.85,
                               {0.0, 1.2e6, 1.0});  // the Fig. 1 HDD#3 mix
  for (double p : {0.01, 0.05, 0.2, 0.5, 0.9}) {
    EXPECT_NEAR(m.cdf(m.quantile(p)), p, 1e-7) << p;
  }
}

TEST(Mixture, SamplingFrequencyMatchesWeights) {
  // With far-separated components, classify samples by a midpoint.
  auto m = two_weibull_mixture(0.2, {0.0, 1.0, 2.0}, 0.8, {1000.0, 1.0, 2.0});
  rng::RandomStream rs(21);
  int low = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) low += (m.sample(rs) < 500.0) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(low) / n, 0.2, 0.01);
}

TEST(Mixture, DecreasingThenIncreasingHazard) {
  // A weak subpopulation mixed with a strong one produces a decreasing
  // hazard (the survivors are increasingly the strong units) until a
  // wear-out mechanism takes over — the paper's HDD #3 signature.
  std::vector<MixtureDistribution::Component> comps;
  comps.push_back({0.15, std::make_unique<Weibull>(0.0, 5.0e4, 0.9)});
  comps.push_back({0.85, std::make_unique<Weibull>(0.0, 1.2e6, 1.0)});
  MixtureDistribution mix(std::move(comps));
  EXPECT_GT(mix.hazard(100.0), mix.hazard(20000.0));
}

TEST(Mixture, RejectsBadInput) {
  EXPECT_THROW(MixtureDistribution({}), ModelError);
  std::vector<MixtureDistribution::Component> comps;
  comps.push_back({0.0, std::make_unique<Exponential>(1.0)});
  EXPECT_THROW(MixtureDistribution(std::move(comps)), ModelError);
}

TEST(Mixture, ComponentAccessors) {
  auto m = two_weibull_mixture(1.0, {0.0, 10.0, 1.0}, 3.0, {0.0, 20.0, 2.0});
  EXPECT_EQ(m.component_count(), 2u);
  EXPECT_NE(m.component(1).describe().find("eta=20"), std::string::npos);
  EXPECT_THROW(static_cast<void>(m.component(2)), ModelError);
  EXPECT_THROW(static_cast<void>(m.weight(2)), ModelError);
}

TEST(CompetingRisks, RiskAccessors) {
  std::vector<DistributionPtr> risks;
  risks.push_back(std::make_unique<Exponential>(0.01));
  risks.push_back(std::make_unique<Exponential>(0.02));
  CompetingRisks cr(std::move(risks));
  EXPECT_EQ(cr.risk_count(), 2u);
  EXPECT_NE(cr.risk(0).describe().find("0.01"), std::string::npos);
  EXPECT_THROW(static_cast<void>(cr.risk(2)), ModelError);
}

TEST(Mixture, CloneIsDeep) {
  auto m = two_weibull_mixture(0.5, {0.0, 10.0, 1.0}, 0.5, {0.0, 20.0, 1.0});
  auto c = m.clone();
  EXPECT_NEAR(c->cdf(15.0), m.cdf(15.0), 0.0);
  EXPECT_NE(c->describe().find("Mixture"), std::string::npos);
}

TEST(CompetingRisks, SurvivalIsProduct) {
  std::vector<DistributionPtr> risks;
  risks.push_back(std::make_unique<Exponential>(0.01));
  risks.push_back(std::make_unique<Exponential>(0.03));
  CompetingRisks cr(std::move(risks));
  // Min of exponentials is exponential with the summed rate.
  const Exponential combined(0.04);
  for (double t : {1.0, 10.0, 50.0}) {
    EXPECT_NEAR(cr.survival(t), combined.survival(t), 1e-12) << t;
    EXPECT_NEAR(cr.hazard(t), 0.04, 1e-12) << t;
  }
}

TEST(CompetingRisks, HazardIsSumOfHazards) {
  std::vector<DistributionPtr> risks;
  risks.push_back(std::make_unique<Weibull>(0.0, 100.0, 0.9));
  risks.push_back(std::make_unique<Weibull>(50.0, 30.0, 3.0));
  CompetingRisks cr(std::move(risks));
  const Weibull a(0.0, 100.0, 0.9), b(50.0, 30.0, 3.0);
  for (double t : {10.0, 60.0, 120.0}) {
    EXPECT_NEAR(cr.hazard(t), a.hazard(t) + b.hazard(t), 1e-10) << t;
    EXPECT_NEAR(cr.cum_hazard(t), a.cum_hazard(t) + b.cum_hazard(t), 1e-10);
  }
}

TEST(CompetingRisks, BathtubUpturn) {
  // The Fig. 1 HDD#2 shape: random failures + delayed wear-out gives a
  // hazard that is flat early and rises after the wear-out onset.
  std::vector<DistributionPtr> risks;
  risks.push_back(std::make_unique<Weibull>(0.0, 3.5e5, 1.0));
  risks.push_back(std::make_unique<Weibull>(10000.0, 3.0e4, 3.0));
  CompetingRisks cr(std::move(risks));
  EXPECT_NEAR(cr.hazard(5000.0), 1.0 / 3.5e5, 1e-9);
  EXPECT_GT(cr.hazard(29000.0), 10.0 * cr.hazard(5000.0));
}

TEST(CompetingRisks, SampleIsMinOfComponents) {
  std::vector<DistributionPtr> risks;
  risks.push_back(std::make_unique<Degenerate>(7.0));
  risks.push_back(std::make_unique<Degenerate>(4.0));
  CompetingRisks cr(std::move(risks));
  rng::RandomStream rs(5);
  EXPECT_DOUBLE_EQ(cr.sample(rs), 4.0);
}

TEST(CompetingRisks, QuantileInvertsCdf) {
  std::vector<DistributionPtr> risks;
  risks.push_back(std::make_unique<Weibull>(0.0, 3.5e5, 1.0));
  risks.push_back(std::make_unique<Weibull>(10000.0, 3.0e4, 3.0));
  CompetingRisks cr(std::move(risks));
  for (double p : {0.001, 0.01, 0.1, 0.5, 0.95}) {
    EXPECT_NEAR(cr.cdf(cr.quantile(p)), p, 1e-7) << p;
  }
}

TEST(CompetingRisks, SampleMomentsMatchQuadrature) {
  std::vector<DistributionPtr> risks;
  risks.push_back(std::make_unique<Weibull>(0.0, 200.0, 1.5));
  risks.push_back(std::make_unique<Weibull>(0.0, 300.0, 0.8));
  CompetingRisks cr(std::move(risks));
  const double analytic_mean = cr.mean();  // numeric default via survival
  rng::RandomStream rs(8);
  util::RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(cr.sample(rs));
  EXPECT_NEAR(stats.mean(), analytic_mean, analytic_mean * 0.02);
}

TEST(CompetingRisks, ResidualSamplingRespectsAging) {
  std::vector<DistributionPtr> risks;
  risks.push_back(std::make_unique<Weibull>(0.0, 100.0, 3.0));
  risks.push_back(std::make_unique<Weibull>(0.0, 150.0, 2.0));
  CompetingRisks cr(std::move(risks));
  rng::RandomStream rs(10);
  util::RunningStats young, old;
  for (int i = 0; i < 30000; ++i) {
    young.add(cr.sample_residual(0.0, rs));
    old.add(cr.sample_residual(80.0, rs));
  }
  EXPECT_GT(young.mean(), old.mean());
}

TEST(Shifted, DelaysTheBaseLaw) {
  Shifted s(std::make_unique<Exponential>(0.1), 5.0);
  EXPECT_DOUBLE_EQ(s.cdf(5.0), 0.0);
  EXPECT_NEAR(s.cdf(15.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(s.mean(), 15.0, 1e-12);
  EXPECT_NEAR(s.variance(), 100.0, 1e-12);
  EXPECT_NEAR(s.quantile(0.5), 5.0 + 10.0 * std::log(2.0), 1e-10);
}

TEST(Shifted, SampleNeverBelowShift) {
  Shifted s(std::make_unique<Weibull>(0.0, 1.0, 0.5), 3.0);
  rng::RandomStream rs(12);
  for (int i = 0; i < 5000; ++i) EXPECT_GE(s.sample(rs), 3.0);
}

TEST(Shifted, RejectsNegativeShiftAndNull) {
  EXPECT_THROW(Shifted(std::make_unique<Exponential>(1.0), -1.0), ModelError);
  EXPECT_THROW(Shifted(nullptr, 1.0), ModelError);
}

}  // namespace
}  // namespace raidrel::stats
