#include <gtest/gtest.h>

#include "util/error.h"
#include "workload/read_errors.h"
#include "workload/restore_model.h"

namespace raidrel::workload {
namespace {

TEST(ReadErrors, Table1GridMatchesPaper) {
  // Paper Table 1: err/h = RER x Bytes/h across the 3x2 grid.
  const auto grid = table1_grid();
  ASSERT_EQ(grid.size(), 6u);
  // Low RER (8e-15): 1.08e-5 and 1.08e-4 err/h.
  EXPECT_NEAR(grid[0].errors_per_hour, 1.08e-5, 1e-9);
  EXPECT_NEAR(grid[1].errors_per_hour, 1.08e-4, 1e-8);
  // Med RER (8e-14): 1.08e-4 and 1.08e-3.
  EXPECT_NEAR(grid[2].errors_per_hour, 1.08e-4, 1e-8);
  EXPECT_NEAR(grid[3].errors_per_hour, 1.08e-3, 1e-7);
  // High RER (3.2e-13): 4.32e-4 and 4.32e-3.
  EXPECT_NEAR(grid[4].errors_per_hour, 4.32e-4, 1e-8);
  EXPECT_NEAR(grid[5].errors_per_hour, 4.32e-3, 1e-7);
}

TEST(ReadErrors, BaseCaseRateIsMediumLowCell) {
  // 1.08e-4 err/h -> eta = 9259 h, the paper's Table 2 TTLd.
  EXPECT_NEAR(base_case_latent_rate(), 1.08e-4, 1e-10);
  const auto ttld = ttld_from_rate(base_case_latent_rate());
  EXPECT_NEAR(ttld.scale(), 9259.26, 0.01);
  EXPECT_DOUBLE_EQ(ttld.shape(), 1.0);
}

TEST(ReadErrors, PublishedStudiesPresent) {
  const auto studies = published_rer_studies();
  ASSERT_EQ(studies.size(), 3u);
  EXPECT_DOUBLE_EQ(studies[0].errors_per_byte, 8.0e-14);
  EXPECT_DOUBLE_EQ(studies[1].errors_per_byte, 3.2e-13);
  EXPECT_DOUBLE_EQ(studies[2].errors_per_byte, 8.0e-15);
}

TEST(ReadErrors, RateValidation) {
  EXPECT_THROW(ttld_from_rate(0.0), ModelError);
  EXPECT_THROW(latent_defect_rate_per_hour(-1.0, 1.0), ModelError);
}

TEST(RestoreModel, PaperSataExample) {
  // 500 GB SATA drive on a 1.5 Gb/s bus, group of 14 -> ~10.4 h minimum.
  RebuildEnvironment env;
  env.drive_capacity_gb = 500.0;
  env.drive_rate_mb_s = 50.0;
  env.bus_rate_gbit_s = 1.5;
  env.group_size = 14;
  EXPECT_NEAR(minimum_rebuild_hours(env), 10.4, 0.2);
}

TEST(RestoreModel, PaperFibreChannelExample) {
  // 144 GB FC drive, 2 Gb/s bus, group of 14 -> paper says ~3 h; the
  // bus-share model gives ~2.2 h (the paper rounds up); assert the band.
  RebuildEnvironment env;  // defaults are exactly this case
  const double h = minimum_rebuild_hours(env);
  EXPECT_GT(h, 1.8);
  EXPECT_LT(h, 3.2);
}

TEST(RestoreModel, ForegroundIoStretchesRebuild) {
  RebuildEnvironment env;
  const double idle = minimum_rebuild_hours(env);
  env.foreground_io_fraction = 0.5;
  EXPECT_NEAR(minimum_rebuild_hours(env), 2.0 * idle, 1e-9);
}

TEST(RestoreModel, DriveRateBindsWhenBusIsFast) {
  RebuildEnvironment env;
  env.bus_rate_gbit_s = 100.0;  // effectively unconstrained
  env.drive_rate_mb_s = 50.0;
  env.drive_capacity_gb = 180.0;
  // 180,000 MB at 50 MB/s = 1 h.
  EXPECT_NEAR(minimum_rebuild_hours(env), 1.0, 1e-9);
}

TEST(RestoreModel, ScrubFasterThanRebuild) {
  // A scrub reads one drive at full bandwidth; a rebuild shares the bus
  // with the whole group, so scrub minimum <= rebuild minimum.
  RebuildEnvironment env;
  EXPECT_LE(minimum_scrub_hours(env), minimum_rebuild_hours(env));
}

TEST(RestoreModel, DistributionsCarryPhysicalMinimumAsLocation) {
  RebuildEnvironment env;
  const auto restore = restore_distribution(env, {12.0, 2.0});
  EXPECT_NEAR(restore.location(), minimum_rebuild_hours(env), 1e-12);
  EXPECT_DOUBLE_EQ(restore.scale(), 12.0);
  EXPECT_DOUBLE_EQ(restore.shape(), 2.0);
  EXPECT_DOUBLE_EQ(restore.cdf(restore.location()), 0.0);

  const auto scrub = scrub_distribution(env, 168.0);
  EXPECT_NEAR(scrub.location(), minimum_scrub_hours(env), 1e-12);
  EXPECT_DOUBLE_EQ(scrub.scale(), 168.0);
  EXPECT_DOUBLE_EQ(scrub.shape(), 3.0);
}

TEST(RestoreModel, ValidatesEnvironment) {
  RebuildEnvironment env;
  env.group_size = 1;
  EXPECT_THROW(minimum_rebuild_hours(env), ModelError);
  env = {};
  env.foreground_io_fraction = 1.0;
  EXPECT_THROW(minimum_rebuild_hours(env), ModelError);
  env = {};
  env.drive_capacity_gb = 0.0;
  EXPECT_THROW(minimum_scrub_hours(env), ModelError);
}

}  // namespace
}  // namespace raidrel::workload
