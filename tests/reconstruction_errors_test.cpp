// Tests of reconstruction write-errors (paper §4.2): a completed rebuild
// can leave the new drive already carrying a latent defect. Creation never
// triggers a DDF; a later operational failure against it does.
#include <cmath>

#include <gtest/gtest.h>

#include "core/presets.h"
#include "sim/group_simulator.h"
#include "sim/runner.h"
#include "sim/timing_engine.h"
#include "stats/basic_distributions.h"
#include "stats/weibull.h"
#include "util/error.h"
#include "util/math.h"
#include "workload/restore_model.h"

namespace raidrel::sim {
namespace {

using raid::DdfKind;
using raid::GroupConfig;
using raid::SlotModel;
using stats::Degenerate;

SlotModel scripted_slot(double op, double restore, double ld = 1e18,
                        double scrub = -1.0) {
  SlotModel m;
  m.time_to_op_failure = std::make_unique<Degenerate>(op);
  m.time_to_restore = std::make_unique<Degenerate>(restore);
  m.time_to_latent_defect = std::make_unique<Degenerate>(ld);
  if (scrub >= 0.0) m.time_to_scrub = std::make_unique<Degenerate>(scrub);
  return m;
}

TEST(ReconstructionErrors, PhysicalProbabilityModel) {
  workload::RebuildEnvironment env;  // 144 GB
  // 144e9 Bytes at 8e-14 err/Byte -> lambda ~ 0.01152.
  EXPECT_NEAR(workload::reconstruction_defect_probability(env, 8.0e-14),
              0.011454, 1e-5);
  EXPECT_DOUBLE_EQ(workload::reconstruction_defect_probability(env, 0.0),
                   0.0);
  env.drive_capacity_gb = 500.0;
  const double p =
      workload::reconstruction_defect_probability(env, 3.2e-13);
  EXPECT_NEAR(p, -std::expm1(-500e9 * 3.2e-13), 1e-12);
  EXPECT_THROW(workload::reconstruction_defect_probability(env, -1.0),
               ModelError);
}

TEST(ReconstructionErrors, CertainWriteErrorArmsTheNewDrive) {
  // p = 1: every rebuild plants a defect. Slot 0 fails at 100, rebuilt by
  // 110 with a defect; slot 1's failure at 150 then finds it -> DDF.
  std::vector<SlotModel> slots;
  slots.push_back(scripted_slot(100.0, 10.0));
  slots.push_back(scripted_slot(150.0, 10.0));
  GroupConfig cfg;
  cfg.slots = std::move(slots);
  cfg.redundancy = 1;
  cfg.mission_hours = 160.0;
  cfg.reconstruction_defect_probability = 1.0;
  GroupSimulator sim(cfg);
  rng::RandomStream rs(1);
  TrialResult out;
  sim.run_trial(rs, out);
  EXPECT_GE(out.latent_defects, 1u);
  ASSERT_EQ(out.ddfs.size(), 1u);
  EXPECT_DOUBLE_EQ(out.ddfs[0].time, 150.0);
  EXPECT_EQ(out.ddfs[0].kind, DdfKind::kLatentThenOp);
}

TEST(ReconstructionErrors, CreationItselfIsNotADdf) {
  // Only one drive ever fails: its rebuilds keep planting defects on
  // itself, but with no second failure there is never data loss.
  std::vector<SlotModel> slots;
  slots.push_back(scripted_slot(100.0, 10.0));
  slots.push_back(scripted_slot(1e18, 10.0));
  GroupConfig cfg;
  cfg.slots = std::move(slots);
  cfg.redundancy = 1;
  cfg.mission_hours = 500.0;
  cfg.reconstruction_defect_probability = 1.0;
  GroupSimulator sim(cfg);
  rng::RandomStream rs(2);
  TrialResult out;
  sim.run_trial(rs, out);
  EXPECT_TRUE(out.ddfs.empty());
  EXPECT_GE(out.latent_defects, 3u);  // one per completed rebuild
}

TEST(ReconstructionErrors, ScrubCleansReconstructionDefects) {
  // With a fast scrub the planted defect is gone before the second
  // failure arrives.
  std::vector<SlotModel> slots;
  slots.push_back(scripted_slot(100.0, 10.0, 1e18, 5.0));  // scrub in 5 h
  slots.push_back(scripted_slot(150.0, 10.0, 1e18, 5.0));
  GroupConfig cfg;
  cfg.slots = std::move(slots);
  cfg.redundancy = 1;
  cfg.mission_hours = 160.0;
  cfg.reconstruction_defect_probability = 1.0;
  GroupSimulator sim(cfg);
  rng::RandomStream rs(3);
  TrialResult out;
  sim.run_trial(rs, out);
  EXPECT_TRUE(out.ddfs.empty());
  EXPECT_GE(out.scrubs_completed, 1u);
}

TEST(ReconstructionErrors, ValidationRequiresLatentMachinery) {
  auto cfg = core::presets::no_latent_defects().to_group_config();
  cfg.reconstruction_defect_probability = 0.1;
  EXPECT_THROW(cfg.validate(), ModelError);
  auto bad = core::presets::base_case().to_group_config();
  bad.reconstruction_defect_probability = 1.5;
  EXPECT_THROW(bad.validate(), ModelError);
}

TEST(ReconstructionErrors, EnginesAgreeStatistically) {
  raid::SlotModel m;
  m.time_to_op_failure = std::make_unique<stats::Weibull>(0.0, 3000.0, 1.12);
  m.time_to_restore = std::make_unique<stats::Weibull>(6.0, 50.0, 2.0);
  m.time_to_latent_defect = std::make_unique<stats::Weibull>(0.0, 4000.0, 1.0);
  m.time_to_scrub = std::make_unique<stats::Weibull>(6.0, 150.0, 3.0);
  auto cfg = raid::make_uniform_group(8, 1, m, 20000.0);
  cfg.clear_defects_on_ddf_restore = false;
  cfg.reconstruction_defect_probability = 0.3;

  util::RunningStats a_defects, b_defects, a_ddfs, b_ddfs;
  {
    GroupSimulator engine(cfg);
    rng::StreamFactory streams(61);
    TrialResult out;
    for (std::uint64_t i = 0; i < 2500; ++i) {
      auto rs = streams.stream(i);
      engine.run_trial(rs, out);
      a_defects.add(static_cast<double>(out.latent_defects));
      a_ddfs.add(static_cast<double>(out.ddfs.size()));
    }
  }
  {
    TimingDiagramEngine engine(cfg);
    rng::StreamFactory streams(62);
    TrialResult out;
    for (std::uint64_t i = 0; i < 2500; ++i) {
      auto rs = streams.stream(i);
      engine.run_trial(rs, out);
      b_defects.add(static_cast<double>(out.latent_defects));
      b_ddfs.add(static_cast<double>(out.ddfs.size()));
    }
  }
  const double sem_d =
      std::sqrt(a_defects.sem() * a_defects.sem() +
                b_defects.sem() * b_defects.sem());
  EXPECT_NEAR(a_defects.mean(), b_defects.mean(), 5.0 * sem_d);
  const double sem_f = std::sqrt(a_ddfs.sem() * a_ddfs.sem() +
                                 b_ddfs.sem() * b_ddfs.sem());
  EXPECT_NEAR(a_ddfs.mean(), b_ddfs.mean(), 5.0 * sem_f);
}

TEST(ReconstructionErrors, RaisesDdfsOnBaseCase) {
  auto clean = core::presets::base_case().to_group_config();
  auto dirty = clean.clone();
  // A deliberately harsh write-error rate to make the effect measurable
  // at test-sized trial counts.
  dirty.reconstruction_defect_probability = 0.5;
  const RunOptions run{.trials = 20000, .seed = 8, .threads = 0,
                       .bucket_hours = 730.0};
  const auto a = run_monte_carlo(clean, run);
  const auto b = run_monte_carlo(dirty, run);
  EXPECT_GT(b.total_ddfs_per_1000(), a.total_ddfs_per_1000());
}

}  // namespace
}  // namespace raidrel::sim
