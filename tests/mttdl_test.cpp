#include "analytic/mttdl.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace raidrel::analytic {
namespace {

TEST(Mttdl, PaperEq3WorkedExample) {
  // MTBF = 461,386 h, MTTR = 12 h, N = 7 -> MTTDL ~ 36,162 years and
  // E[N(t)] ~ 0.277 DDFs for 1000 groups over 10 years (paper eq. 3).
  const MttdlInputs in{7, 461386.0, 12.0};
  const double years = mttdl_exact_hours(in) / kHoursPerYear;
  EXPECT_NEAR(years, 36162.0, 40.0);
  EXPECT_NEAR(expected_ddfs(in, 87600.0, 1000.0), 0.277, 0.003);
}

TEST(Mttdl, ApproximationCloseWhenRepairFast) {
  const MttdlInputs in{7, 461386.0, 12.0};
  const double exact = mttdl_exact_hours(in);
  const double approx = mttdl_approx_hours(in);
  // mu >> lambda: the simplification is accurate to ~(2N+1) lambda/mu.
  EXPECT_NEAR(approx / exact, 1.0, 1e-3);
  // And the approximation always underestimates (drops positive terms).
  EXPECT_LT(approx, exact);
}

TEST(Mttdl, ApproximationDivergesWhenRepairSlow) {
  const MttdlInputs in{7, 1000.0, 500.0};  // repair nearly as slow as failure
  const double exact = mttdl_exact_hours(in);
  const double approx = mttdl_approx_hours(in);
  EXPECT_GT(exact / approx, 3.0);
}

TEST(Mttdl, ScalesInverselyWithGroupSizeSquaredish) {
  // Doubling N roughly quadruples the DDF rate (N(N+1) term).
  const MttdlInputs small{4, 461386.0, 12.0};
  const MttdlInputs large{8, 461386.0, 12.0};
  const double ratio =
      mttdl_approx_hours(small) / mttdl_approx_hours(large);
  EXPECT_NEAR(ratio, (8.0 * 9.0) / (4.0 * 5.0), 1e-12);
}

TEST(Mttdl, ExpectedDdfsLinearInTimeAndGroups) {
  const MttdlInputs in{7, 461386.0, 12.0};
  const double one = expected_ddfs(in, 8760.0, 1000.0);
  EXPECT_NEAR(expected_ddfs(in, 2.0 * 8760.0, 1000.0), 2.0 * one, 1e-12);
  EXPECT_NEAR(expected_ddfs(in, 8760.0, 2000.0), 2.0 * one, 1e-12);
}

TEST(Mttdl, Raid6VastlyOutlivesRaid5) {
  const MttdlInputs in{7, 461386.0, 12.0};
  const double r5 = mttdl_approx_hours(in);
  const double r6 = mttdl_raid6_approx_hours(in);
  // Third failure needs another lambda*MTTR window: ~ mu/lambda gain.
  EXPECT_GT(r6 / r5, 1000.0);
}

TEST(Mttdl, InputValidation) {
  EXPECT_THROW(mttdl_exact_hours({0, 100.0, 1.0}), ModelError);
  EXPECT_THROW(mttdl_exact_hours({7, 0.0, 1.0}), ModelError);
  EXPECT_THROW(mttdl_exact_hours({7, 100.0, 0.0}), ModelError);
  EXPECT_THROW(expected_ddfs({7, 100.0, 1.0}, -1.0, 10.0), ModelError);
}

}  // namespace
}  // namespace raidrel::analytic
