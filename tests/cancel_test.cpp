// Cooperative cancellation primitives (util/cancel.h): monotonic
// deadlines, token tripping and reason precedence, the parent/child
// observation hierarchy, the deterministic poll-count test hook, the
// thread-local cancellation scope, and the SIGINT/SIGTERM bridge.
#include "util/cancel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <csignal>

#include "util/error.h"

namespace raidrel::util {
namespace {

TEST(Deadline, NeverIsUnarmedAndNeverExpires) {
  const Deadline d = Deadline::never();
  EXPECT_FALSE(d.armed());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining_seconds()));
  EXPECT_GT(d.remaining_seconds(), 0.0);
  // Default construction is the same never-expiring deadline.
  EXPECT_FALSE(Deadline().armed());
}

TEST(Deadline, AfterSecondsArmsAndExpiresOnTheMonotonicClock) {
  const Deadline past = Deadline::after_seconds(0.0);
  EXPECT_TRUE(past.armed());
  EXPECT_TRUE(past.expired());
  EXPECT_LE(past.remaining_seconds(), 0.0);

  const Deadline future = Deadline::after_seconds(3600.0);
  EXPECT_TRUE(future.armed());
  EXPECT_FALSE(future.expired());
  EXPECT_GT(future.remaining_seconds(), 3590.0);
  EXPECT_LE(future.remaining_seconds(), 3600.0);
  EXPECT_TRUE(Deadline::at(future.when()).expired() == false);
}

TEST(CancelReasonNames, CoverEveryReason) {
  EXPECT_STREQ(to_string(CancelReason::kNone), "none");
  EXPECT_STREQ(to_string(CancelReason::kCancelled), "cancelled");
  EXPECT_STREQ(to_string(CancelReason::kDeadline), "deadline");
}

TEST(CancelToken, StartsCleanAndCountsPolls) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kNone);
  EXPECT_EQ(token.polls(), 0u);
  EXPECT_NO_THROW(token.poll());
  EXPECT_EQ(token.poll_quiet(), CancelReason::kNone);
  EXPECT_EQ(token.polls(), 2u);
  EXPECT_LT(token.seconds_since_cancel(), 0.0);
  EXPECT_FALSE(token.deadline().armed());
}

TEST(CancelToken, RequestCancelTripsAndTheFirstReasonWins) {
  CancelToken token;
  token.request_cancel(CancelReason::kNone);  // a no-op, not a trip
  EXPECT_FALSE(token.cancelled());
  token.request_cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kCancelled);
  token.request_cancel(CancelReason::kDeadline);  // too late: first wins
  EXPECT_EQ(token.reason(), CancelReason::kCancelled);
  EXPECT_GE(token.seconds_since_cancel(), 0.0);

  try {
    token.poll();
    FAIL() << "poll() on a cancelled token did not throw";
  } catch (const OperationCancelled& e) {
    EXPECT_EQ(e.reason(), CancelReason::kCancelled);
    // Site-keyed handlers classify it like any other SiteError.
    const SiteError& as_site = e;
    EXPECT_EQ(as_site.site(), "cancelled");
  }
  // poll_quiet never throws, even cancelled — that is the drain side.
  EXPECT_EQ(token.poll_quiet(), CancelReason::kCancelled);
}

TEST(CancelToken, ExpiredDeadlineReadsAsDeadlineReason) {
  const CancelToken token{Deadline::after_seconds(0.0)};
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kDeadline);
  EXPECT_TRUE(token.deadline().armed());
  EXPECT_GE(token.seconds_since_cancel(), 0.0);
  try {
    token.poll();
    FAIL() << "poll() past the deadline did not throw";
  } catch (const OperationCancelled& e) {
    EXPECT_EQ(e.reason(), CancelReason::kDeadline);
    EXPECT_EQ(e.site(), "deadline");
  }
}

TEST(CancelToken, CopiesShareOneState) {
  CancelToken a;
  CancelToken b = a;
  b.request_cancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_EQ(a.reason(), CancelReason::kCancelled);
}

TEST(CancelToken, ChildObservesAncestorsButNeverPropagatesUp) {
  CancelToken sweep;
  CancelToken cell = sweep.child();
  CancelToken nested = cell.child();
  EXPECT_FALSE(cell.cancelled());

  // A stalled cell's own cancel must not stop the sweep.
  cell.request_cancel(CancelReason::kDeadline);
  EXPECT_EQ(cell.reason(), CancelReason::kDeadline);
  EXPECT_EQ(nested.reason(), CancelReason::kDeadline);
  EXPECT_FALSE(sweep.cancelled());

  // A sweep-level cancel reaches every descendant, even through a parent
  // that has not itself been tripped.
  CancelToken fresh = sweep.child().child();
  sweep.request_cancel();
  EXPECT_EQ(fresh.reason(), CancelReason::kCancelled);
  // The cell already had its own (earlier, nearer) reason; it wins.
  EXPECT_EQ(cell.reason(), CancelReason::kDeadline);
}

TEST(CancelToken, ChildDeadlineBoundsTheChildOnly) {
  const CancelToken sweep;
  const CancelToken cell = sweep.child(Deadline::after_seconds(0.0));
  EXPECT_EQ(cell.reason(), CancelReason::kDeadline);
  EXPECT_FALSE(sweep.cancelled());
}

TEST(CancelToken, PollsCountPerTokenStateNotPerHierarchy) {
  const CancelToken parent;
  const CancelToken child = parent.child();
  child.poll_quiet();
  child.poll_quiet();
  EXPECT_EQ(child.polls(), 2u);
  EXPECT_EQ(parent.polls(), 0u);
}

TEST(CancelToken, CancelAfterPollsTripsOnExactlyTheNthPoll) {
  CancelToken token;
  token.cancel_after_polls(3);
  EXPECT_EQ(token.poll_quiet(), CancelReason::kNone);
  EXPECT_EQ(token.poll_quiet(), CancelReason::kNone);
  EXPECT_EQ(token.poll_quiet(), CancelReason::kCancelled);
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kCancelled);
  EXPECT_EQ(token.polls(), 3u);

  // 0 disables the hook entirely.
  CancelToken off;
  off.cancel_after_polls(0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(off.poll_quiet(), CancelReason::kNone);
  }
}

TEST(CancelScope, InstallsAndRestoresTheThreadLocalToken) {
  EXPECT_EQ(current_cancel_token(), nullptr);
  CancelToken outer_token;
  {
    const CancelScope outer(&outer_token);
    EXPECT_EQ(current_cancel_token(), &outer_token);
    CancelToken inner_token;
    {
      const CancelScope inner(&inner_token);
      EXPECT_EQ(current_cancel_token(), &inner_token);
      {
        // A null scope clears the slot — a token must not leak into work
        // that cannot honor it.
        const CancelScope cleared(nullptr);
        EXPECT_EQ(current_cancel_token(), nullptr);
      }
      EXPECT_EQ(current_cancel_token(), &inner_token);
    }
    EXPECT_EQ(current_cancel_token(), &outer_token);
  }
  EXPECT_EQ(current_cancel_token(), nullptr);
}

TEST(SignalGuard, FirstSignalTripsTheTokenCooperatively) {
  CancelToken token;
  {
    const SignalGuard guard(token);
    EXPECT_FALSE(guard.triggered());
    EXPECT_EQ(guard.signal(), 0);
    // One delivery: the handler trips the token and returns — the process
    // must NOT die here (the second delivery is the forced _exit path,
    // exercised end-to-end by the CI interruption matrix).
    ASSERT_EQ(std::raise(SIGTERM), 0);
    EXPECT_TRUE(guard.triggered());
    EXPECT_EQ(guard.signal(), SIGTERM);
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.reason(), CancelReason::kCancelled);
  }
  // The destructor released the handler slot: a later run (or test) may
  // install its own guard.
  CancelToken next;
  EXPECT_NO_THROW(SignalGuard{next});
  EXPECT_FALSE(next.cancelled());
}

TEST(SignalGuard, RefusesNesting) {
  const CancelToken token;
  const SignalGuard guard(token);
  const CancelToken other;
  EXPECT_THROW(SignalGuard{other}, ModelError);
}

}  // namespace
}  // namespace raidrel::util
