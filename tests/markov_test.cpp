#include "analytic/markov.h"

#include <cmath>

#include <gtest/gtest.h>

#include "analytic/mttdl.h"
#include "util/error.h"

namespace raidrel::analytic {
namespace {

TEST(MarkovChain, ValidatesGenerator) {
  // Row sum not zero.
  EXPECT_THROW(MarkovChain(2, {-1.0, 0.5, 0.0, 0.0}), ModelError);
  // Negative off-diagonal.
  EXPECT_THROW(MarkovChain(2, {1.0, -1.0, 0.0, 0.0}), ModelError);
  // Size mismatch.
  EXPECT_THROW(MarkovChain(2, {0.0, 0.0, 0.0}), ModelError);
}

TEST(MarkovChain, AbsorbingDetection) {
  const auto chain = raid5_chain(7, 1e-5, 1.0 / 12.0);
  EXPECT_FALSE(chain.is_absorbing(0));
  EXPECT_FALSE(chain.is_absorbing(1));
  EXPECT_TRUE(chain.is_absorbing(2));
}

TEST(MarkovChain, TwoStateExponentialDecay) {
  // 0 -> 1 at rate r: P(still in 0 at t) = exp(-rt).
  const double r = 0.01;
  MarkovChain chain(2, {-r, r, 0.0, 0.0});
  for (double t : {10.0, 100.0, 500.0}) {
    const auto pi = chain.transient_distribution(0, t);
    EXPECT_NEAR(pi[0], std::exp(-r * t), 1e-9) << t;
    EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-9);
  }
  EXPECT_NEAR(chain.mean_time_to_absorption(0), 100.0, 1e-9);
}

TEST(MarkovChain, DistributionSumsToOne) {
  const auto chain = raid5_chain(7, 1.0 / 461386.0, 1.0 / 12.0);
  for (double t : {1.0, 100.0, 87600.0}) {
    const auto pi = chain.transient_distribution(0, t);
    double total = 0.0;
    for (double p : pi) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9) << t;
    for (double p : pi) EXPECT_GE(p, -1e-12);
  }
}

TEST(MarkovChain, Raid5MeanAbsorptionMatchesEq1) {
  const double lambda = 1.0 / 461386.0;
  const double mu = 1.0 / 12.0;
  const auto chain = raid5_chain(7, lambda, mu);
  const double mtta = chain.mean_time_to_absorption(0);
  const double eq1 = mttdl_exact_hours({7, 461386.0, 12.0});
  EXPECT_NEAR(mtta / eq1, 1.0, 1e-9);
  EXPECT_NEAR(raid5_mttdl_closed_form(7, lambda, mu) / eq1, 1.0, 1e-12);
}

TEST(MarkovChain, AbsorptionProbabilityMatchesHppApproximation) {
  // For t << MTTDL, P(loss by t) ~ t/MTTDL.
  const auto chain = raid5_chain(7, 1.0 / 461386.0, 1.0 / 12.0);
  const double mttdl = chain.mean_time_to_absorption(0);
  const double t = 87600.0;
  const double p = chain.absorption_probability(0, 2, t);
  EXPECT_NEAR(p / (t / mttdl), 1.0, 0.01);
}

TEST(MarkovChain, AbsorptionProbabilityMonotoneInTime) {
  const auto chain = raid5_chain(7, 1e-4, 1.0 / 12.0);
  double prev = 0.0;
  for (double t : {1000.0, 10000.0, 50000.0, 200000.0}) {
    const double p = chain.absorption_probability(0, 2, t);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(MarkovChain, Raid6MeanAbsorptionMatchesApproxFormula) {
  const double lambda = 1.0 / 461386.0;
  const double mu = 1.0 / 12.0;
  const auto chain = raid6_chain(7, lambda, mu);
  const double mtta = chain.mean_time_to_absorption(0);
  const double approx = mttdl_raid6_approx_hours({7, 461386.0, 12.0});
  // The approximation drops O(lambda/mu) terms; agree within 1%.
  EXPECT_NEAR(mtta / approx, 1.0, 0.01);
}

TEST(MarkovChain, Raid6FarSaferThanRaid5) {
  const double lambda = 1.0 / 461386.0;
  const double mu = 1.0 / 12.0;
  const double t = 87600.0;
  const double p5 = raid5_chain(7, lambda, mu).absorption_probability(0, 2, t);
  const double p6 = raid6_chain(7, lambda, mu).absorption_probability(0, 3, t);
  EXPECT_GT(p5 / p6, 1000.0);
}

TEST(MarkovChain, RequiresAbsorbingTargetForAbsorptionQuery) {
  const auto chain = raid5_chain(7, 1e-5, 0.1);
  EXPECT_THROW(static_cast<void>(chain.absorption_probability(0, 1, 10.0)),
               ModelError);
}

TEST(MarkovChain, MeanTimeFromAbsorbingStateRejected) {
  const auto chain = raid5_chain(7, 1e-5, 0.1);
  EXPECT_THROW(static_cast<void>(chain.mean_time_to_absorption(2)),
               ModelError);
}

TEST(MarkovChain, StiffChainStaysStable) {
  // mu/lambda ~ 4e4 and long horizon: uniformization must not blow up.
  const auto chain = raid5_chain(7, 1.0 / 461386.0, 1.0 / 6.0);
  const auto pi = chain.transient_distribution(0, 87600.0);
  double total = 0.0;
  for (double p : pi) {
    EXPECT_TRUE(std::isfinite(p));
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-8);
}

}  // namespace
}  // namespace raidrel::analytic
