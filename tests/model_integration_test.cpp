// End-to-end integration: the facade must reproduce the paper's headline
// quantitative claims (shape, ordering, and magnitude bands — see DESIGN.md
// for the reproduction criteria). These use smaller trial counts than the
// bench harnesses; tolerances are set accordingly.
#include <gtest/gtest.h>

#include "analytic/mttdl.h"
#include "core/model.h"
#include "core/presets.h"

namespace raidrel::core {
namespace {

sim::RunOptions quick(std::size_t trials, std::uint64_t seed) {
  return {.trials = trials, .seed = seed, .threads = 0,
          .bucket_hours = 730.0};
}

TEST(ModelIntegration, MttdlBaselineWiredCorrectly) {
  const auto result =
      evaluate_scenario(presets::base_case(), quick(200, 1));
  // Paper eq. 3: MTTDL ~ 36,162 years, 0.277 DDFs / 1000 groups / 10 yr.
  EXPECT_NEAR(result.mttdl_hours / analytic::kHoursPerYear, 36162.0, 50.0);
  EXPECT_NEAR(result.mttdl_ddfs_per_1000_at(87600.0), 0.277, 0.01);
  EXPECT_EQ(result.mttdl_inputs.data_drives, 7u);
}

TEST(ModelIntegration, ConstConstVariantMatchesMttdlViaProbe) {
  // The paper's Fig. 6 sanity check: under constant rates the simulation
  // reproduces the MTTDL line. Counting would need ~1e8 trials; the
  // conditional-expectation probe gets there in 20k.
  const auto result = evaluate_scenario(
      presets::fig6_variant(presets::Fig6Variant::kConstConst),
      quick(20000, 2));
  const double probe =
      result.run.total_ddfs_per_1000(sim::Estimator::kDoubleOpProbe);
  const double mttdl = result.mttdl_ddfs_per_1000_at(87600.0);
  EXPECT_NEAR(probe / mttdl, 1.0, 0.15);
}

TEST(ModelIntegration, Fig6VariantOrderingViaProbe) {
  // Fig. 6's qualitative content: the 3-parameter restore law raises
  // 10-year double-op DDFs above the MTTDL line, the beta = 1.12 failure
  // law lowers them below it, and c-c sits on it. Check the full ordering
  // c-r(t) > c-c > f(t)-r(t) > f(t)-c with the probe estimator.
  using presets::Fig6Variant;
  auto probe_total = [&](Fig6Variant v) {
    const auto r = evaluate_scenario(presets::fig6_variant(v),
                                     quick(30000, 11));
    return r.run.total_ddfs_per_1000(sim::Estimator::kDoubleOpProbe);
  };
  const double crt = probe_total(Fig6Variant::kConstTimeDep);
  const double cc = probe_total(Fig6Variant::kConstConst);
  const double ftrt = probe_total(Fig6Variant::kTimeDepTimeDep);
  const double ftc = probe_total(Fig6Variant::kTimeDepConst);
  EXPECT_GT(crt, cc);
  EXPECT_GT(cc, ftrt);
  EXPECT_GT(ftrt, ftc);
}

TEST(ModelIntegration, NoScrubProducesPaperScaleDdfs) {
  // Paper: "over 1,200 DDFs in 1,000 RAID groups over the 10-year mission"
  // without scrubbing (our DDF-reset convention trims that slightly).
  const auto result =
      evaluate_scenario(presets::base_case_no_scrub(), quick(3000, 3));
  const double total = result.run.total_ddfs_per_1000();
  EXPECT_GT(total, 800.0);
  EXPECT_LT(total, 1700.0);
}

TEST(ModelIntegration, ScrubDurationOrdersDdfs) {
  // Fig. 9: shorter scrubs -> fewer DDFs, no-scrub worst.
  double prev = 0.0;
  for (double scrub : {12.0, 48.0, 168.0, 336.0}) {
    const auto result = evaluate_scenario(presets::with_scrub_duration(scrub),
                                          quick(3000, 4));
    const double total = result.run.total_ddfs_per_1000();
    EXPECT_GT(total, prev) << "scrub=" << scrub;
    prev = total;
  }
  const auto no_scrub =
      evaluate_scenario(presets::base_case_no_scrub(), quick(3000, 4));
  EXPECT_GT(no_scrub.run.total_ddfs_per_1000(), prev);
}

TEST(ModelIntegration, LatentThenOpDominatesBaseCase) {
  // The paper's core claim: latent defects, not double operational
  // failures, drive data loss.
  const auto result =
      evaluate_scenario(presets::base_case(), quick(4000, 5));
  const double latent =
      result.run.total_per_1000(raid::DdfKind::kLatentThenOp);
  const double double_op =
      result.run.total_per_1000(raid::DdfKind::kDoubleOperational);
  EXPECT_GT(latent, 30.0 * std::max(double_op, 1e-6));
}

TEST(ModelIntegration, FirstYearRatioVsMttdlIsHuge) {
  // Table 3: 168 h scrub -> ratio > 360 in the first year. Assert a
  // conservative floor at test-size trial counts.
  const auto result =
      evaluate_scenario(presets::base_case(), quick(6000, 6));
  const double ratio = result.ratio_vs_mttdl_at(8760.0);
  EXPECT_GT(ratio, 100.0);
  EXPECT_LT(ratio, 2000.0);
}

TEST(ModelIntegration, OpShapeSensitivityMatchesFig10Ordering) {
  // Fig. 10: at fixed eta, beta = 0.8 front-loads failures (more DDFs over
  // the mission) relative to beta = 1.4.
  const auto low =
      evaluate_scenario(presets::with_op_shape(0.8), quick(4000, 7));
  const auto high =
      evaluate_scenario(presets::with_op_shape(1.4), quick(4000, 7));
  EXPECT_GT(low.run.total_ddfs_per_1000(),
            1.5 * high.run.total_ddfs_per_1000());
}

TEST(ModelIntegration, Raid6SlashesDdfs) {
  // The paper's conclusion: "eventually, RAID 6 will be required".
  const auto r5 = evaluate_scenario(presets::base_case(), quick(4000, 8));
  const auto r6 =
      evaluate_scenario(presets::raid6_base_case(), quick(4000, 8));
  EXPECT_LT(r6.run.total_ddfs_per_1000(),
            0.5 * r5.run.total_ddfs_per_1000());
}

TEST(ModelIntegration, RocofIncreasesOverMission) {
  // Fig. 8: the rate of occurrence of failures grows in time (beta > 1
  // wear-out shows through the system-level process). Compare first and
  // last thirds of the mission.
  const auto result =
      evaluate_scenario(presets::base_case_no_scrub(), quick(4000, 9));
  const auto rocof = result.run.rocof_per_1000();
  const std::size_t third = rocof.size() / 3;
  double early = 0.0, late = 0.0;
  for (std::size_t i = 0; i < third; ++i) early += rocof[i];
  for (std::size_t i = rocof.size() - third; i < rocof.size(); ++i) {
    late += rocof[i];
  }
  EXPECT_GT(late, 1.2 * early);
}

TEST(ModelIntegration, EvaluateGroupEscapeHatch) {
  // Arbitrary GroupConfig with a caller-supplied baseline.
  const auto group = presets::base_case().to_group_config();
  const auto result = evaluate_group(group, presets::mttdl_inputs(),
                                     quick(500, 10), "custom-run");
  EXPECT_EQ(result.scenario_name, "custom-run");
  EXPECT_GT(result.run.trials(), 0u);
}

}  // namespace
}  // namespace raidrel::core
