#include "stats/fit.h"

#include <cmath>

#include <gtest/gtest.h>

#include "rng/rng.h"
#include "util/error.h"

namespace raidrel::stats {
namespace {

std::vector<double> draw(const Weibull& w, int n, std::uint64_t seed) {
  rng::RandomStream rs(seed);
  std::vector<double> times(n);
  for (auto& t : times) t = w.sample(rs);
  return times;
}

LifeData draw_censored(const Weibull& w, int n, double window,
                       std::uint64_t seed) {
  rng::RandomStream rs(seed);
  LifeData data;
  data.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double t = w.sample(rs);
    data.push_back(t < window ? LifeObservation{t, true}
                              : LifeObservation{window, false});
  }
  return data;
}

TEST(RankRegression, RecoversCompleteSampleParameters) {
  const Weibull w(0.0, 1000.0, 1.5);
  const auto fit = fit_weibull_rank_regression(draw(w, 4000, 1));
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.params.beta, 1.5, 0.08);
  EXPECT_NEAR(fit.params.eta, 1000.0, 40.0);
  EXPECT_GT(fit.r_squared, 0.97);
  EXPECT_EQ(fit.n_failures, 4000u);
}

TEST(RankRegression, CensoredRecovery) {
  const Weibull w(0.0, 1000.0, 2.0);
  const auto data = draw_censored(w, 6000, 900.0, 2);
  const auto fit = fit_weibull_rank_regression_censored(data);
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.params.beta, 2.0, 0.12);
  EXPECT_NEAR(fit.params.eta, 1000.0, 60.0);
  EXPECT_LT(fit.n_failures, fit.n_total);
}

TEST(RankRegression, LowLinearityOnMixture) {
  // A strongly bimodal population should NOT look Weibull: r^2 visibly
  // below a clean sample's (the paper's "only HDD #1 fits" observation).
  rng::RandomStream rs(3);
  const Weibull early(0.0, 50.0, 3.0);
  const Weibull late(0.0, 5000.0, 3.0);
  std::vector<double> times;
  for (int i = 0; i < 2000; ++i) {
    times.push_back(rs.bernoulli(0.5) ? early.sample(rs) : late.sample(rs));
  }
  const auto fit = fit_weibull_rank_regression(times);
  const auto clean =
      fit_weibull_rank_regression(draw(Weibull(0.0, 500.0, 1.5), 2000, 4));
  EXPECT_LT(fit.r_squared, clean.r_squared - 0.01);
}

TEST(Mle, RecoversCompleteSampleParameters) {
  const Weibull w(0.0, 461386.0, 1.12);  // the paper's TTOp
  LifeData data;
  for (double t : draw(w, 5000, 5)) data.push_back({t, true});
  const auto fit = fit_weibull_mle(data);
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.params.beta, 1.12, 0.04);
  EXPECT_NEAR(fit.params.eta, 461386.0, 15000.0);
}

TEST(Mle, HeavilyCensoredFieldStudyShape) {
  // The paper's vintage-2 shape: ~24k drives, ~1k failures (96% censored).
  const Weibull w(0.0, 1.2566e5, 1.2162);
  const auto data = draw_censored(w, 24000, 9000.0, 6);
  std::size_t failures = 0;
  for (const auto& d : data) failures += d.event;
  ASSERT_GT(failures, 500u);
  ASSERT_LT(failures, 2500u);
  const auto fit = fit_weibull_mle(data);
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.params.beta, 1.2162, 0.1);
  // Eta is extrapolated far beyond the window; accept 20%.
  EXPECT_NEAR(fit.params.eta, 1.2566e5, 0.2 * 1.2566e5);
}

TEST(Mle, ExponentialDataYieldsBetaNearOne) {
  const Weibull w(0.0, 9259.0, 1.0);  // the paper's TTLd
  LifeData data;
  for (double t : draw(w, 4000, 7)) data.push_back({t, true});
  const auto fit = fit_weibull_mle(data);
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.params.beta, 1.0, 0.04);
}

TEST(Mle, LikelihoodAtTruthBeatsPerturbedParams) {
  const Weibull w(0.0, 100.0, 2.0);
  LifeData data;
  for (double t : draw(w, 3000, 8)) data.push_back({t, true});
  const double at_truth = weibull_log_likelihood(data, {0.0, 100.0, 2.0});
  EXPECT_GT(at_truth, weibull_log_likelihood(data, {0.0, 100.0, 1.0}));
  EXPECT_GT(at_truth, weibull_log_likelihood(data, {0.0, 200.0, 2.0}));
}

TEST(Mle, FitMaximizesLikelihoodLocally) {
  const Weibull w(0.0, 500.0, 1.3);
  LifeData data;
  for (double t : draw(w, 2000, 9)) data.push_back({t, true});
  const auto fit = fit_weibull_mle(data);
  ASSERT_TRUE(fit.converged);
  const double ll = fit.log_likelihood;
  for (double db : {-0.05, 0.05}) {
    WeibullParams p = fit.params;
    p.beta += db;
    EXPECT_GT(ll, weibull_log_likelihood(data, p));
  }
  for (double de : {-20.0, 20.0}) {
    WeibullParams p = fit.params;
    p.eta += de;
    EXPECT_GT(ll, weibull_log_likelihood(data, p));
  }
}

TEST(Mle, RequiresTwoFailures) {
  LifeData data{{5.0, true}, {10.0, false}};
  EXPECT_THROW(fit_weibull_mle(data), ModelError);
}

TEST(Mle3Param, RecoversLocation) {
  const Weibull w(50.0, 100.0, 2.0);
  LifeData data;
  for (double t : draw(w, 4000, 10)) data.push_back({t, true});
  const auto fit = fit_weibull3_mle(data);
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.params.gamma, 50.0, 10.0);
  EXPECT_NEAR(fit.params.beta, 2.0, 0.25);
}

TEST(Mle3Param, ZeroLocationDataStaysNearZero) {
  const Weibull w(0.0, 100.0, 1.5);
  LifeData data;
  for (double t : draw(w, 4000, 11)) data.push_back({t, true});
  const auto fit = fit_weibull3_mle(data);
  EXPECT_TRUE(fit.converged);
  EXPECT_LT(fit.params.gamma, 5.0);
  // 3-parameter fit must be at least as likely as the 2-parameter one.
  const auto fit2 = fit_weibull_mle(data);
  EXPECT_GE(fit.log_likelihood, fit2.log_likelihood - 1e-6);
}

TEST(ExponentialMle, RateIsFailuresOverTimeOnTest) {
  LifeData data{{10.0, true}, {20.0, true}, {30.0, false}, {40.0, false}};
  const auto fit = fit_exponential_mle(data);
  EXPECT_EQ(fit.n_failures, 2u);
  EXPECT_DOUBLE_EQ(fit.rate, 2.0 / 100.0);
}

TEST(ExponentialMle, RecoversRate) {
  const Weibull w(0.0, 9259.0, 1.0);
  const auto data = draw_censored(w, 10000, 8000.0, 12);
  const auto fit = fit_exponential_mle(data);
  EXPECT_NEAR(fit.rate, 1.08e-4, 5e-6);
}

TEST(ExponentialMle, NeedsAFailure) {
  LifeData data{{10.0, false}};
  EXPECT_THROW(fit_exponential_mle(data), ModelError);
}

}  // namespace
}  // namespace raidrel::stats
