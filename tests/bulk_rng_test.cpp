// The bulk uniform fill (rng/bulk.h) promises bit-identity with scalar
// per-stream draws at every backend: same outputs, same post-call stream
// states. These tests compare every backend the machine can run against
// the scalar loop across lengths that straddle the SIMD block size
// (0, 1, W-1, W, W+1, and a large non-multiple), verify the advanced
// states by drawing again afterwards, and pin literal output values so
// a silent change to the generator or the conversion cannot hide behind
// a self-consistent pair of bugs.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rng/bulk.h"
#include "rng/rng.h"
#include "util/cpu_features.h"

namespace raidrel::rng {
namespace {

constexpr std::uint64_t kSeed = 20070625;

/// n distinct streams (the fill's precondition) plus the pointer array
/// the API takes.
struct StreamSet {
  std::vector<RandomStream> streams;
  std::vector<RandomStream*> ptrs;

  explicit StreamSet(std::size_t n, std::uint64_t first = 0) {
    const StreamFactory factory(kSeed);
    streams.reserve(n);
    ptrs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      streams.push_back(factory.stream(first + i));
    }
    for (auto& s : streams) ptrs.push_back(&s);
  }
};

std::vector<util::SimdIsa> runnable_backends() {
  std::vector<util::SimdIsa> tiers{util::SimdIsa::kGeneric};
  for (util::SimdIsa isa : {util::SimdIsa::kSse2, util::SimdIsa::kAvx2,
                            util::SimdIsa::kAvx512}) {
    if (isa <= util::detected_isa()) tiers.push_back(isa);
  }
  return tiers;
}

TEST(BulkRng, MatchesScalarAcrossLengthsAndBackends) {
  // Lengths straddle every backend's block width (2, 4, 8): empty, one,
  // W-1 / W / W+1 for each W, and a large non-multiple that exercises
  // many full blocks plus a tail.
  const std::size_t lengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 205};
  for (const util::SimdIsa isa : runnable_backends()) {
    const FillUniformOpenFn fill = fill_uniform_open_backend(isa);
    for (const std::size_t n : lengths) {
      StreamSet bulk(n);
      StreamSet scalar(n);
      std::vector<double> out(n, -1.0);
      fill(bulk.ptrs.data(), out.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out[i], scalar.streams[i].uniform_open())
            << util::isa_name(isa) << " n=" << n << " i=" << i;
        // The states advanced identically too: the next draw from each
        // stream must agree bit-for-bit.
        EXPECT_EQ(bulk.streams[i].uniform_open(),
                  scalar.streams[i].uniform_open())
            << util::isa_name(isa) << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(BulkRng, RepeatedFillsKeepMatchingScalar) {
  // Three consecutive fills over the same streams — block boundaries
  // land differently once states have advanced, and any scatter bug
  // that corrupts a state word surfaces on the next round.
  constexpr std::size_t kN = 21;
  for (const util::SimdIsa isa : runnable_backends()) {
    const FillUniformOpenFn fill = fill_uniform_open_backend(isa);
    StreamSet bulk(kN);
    StreamSet scalar(kN);
    std::vector<double> out(kN);
    for (int round = 0; round < 3; ++round) {
      fill(bulk.ptrs.data(), out.data(), kN);
      for (std::size_t i = 0; i < kN; ++i) {
        EXPECT_EQ(out[i], scalar.streams[i].uniform_open())
            << util::isa_name(isa) << " round=" << round << " i=" << i;
      }
    }
  }
}

TEST(BulkRng, BackendForWiderIsaThanDetectedClamps) {
  // Asking for a wider backend than the hardware degrades instead of
  // handing back a function that would fault.
  const FillUniformOpenFn fill =
      fill_uniform_open_backend(util::SimdIsa::kAvx512);
  constexpr std::size_t kN = 9;
  StreamSet bulk(kN);
  StreamSet scalar(kN);
  std::vector<double> out(kN);
  fill(bulk.ptrs.data(), out.data(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(out[i], scalar.streams[i].uniform_open());
  }
}

TEST(BulkRng, PinnedFirstDraws) {
  // Literal first draws of streams 0, 1 and 7 under the canonical seed.
  // If the generator, the stream-splitting scheme, or the u64->double
  // conversion ever changes, this fails even if bulk and scalar agree
  // with each other.
  constexpr std::size_t kN = 8;
  StreamSet bulk(kN);
  std::vector<double> out(kN);
  fill_uniform_open_n(bulk.ptrs.data(), out.data(), kN);
  EXPECT_EQ(out[0], 0x1.a36e41c91693ep-2);
  EXPECT_EQ(out[1], 0x1.b6166954476e1p-1);
  EXPECT_EQ(out[7], 0x1.5d8c8425346d7p-1);
  // Second draw of stream 0, through the advanced state.
  EXPECT_EQ(bulk.streams[0].uniform_open(), 0x1.06995fd598b9cp-3);
}

TEST(BulkRng, OutputsAreStrictlyInsideUnitInterval) {
  constexpr std::size_t kN = 4096;
  StreamSet bulk(kN);
  std::vector<double> out(kN);
  fill_uniform_open_n(bulk.ptrs.data(), out.data(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_GT(out[i], 0.0);
    EXPECT_LT(out[i], 1.0);
  }
}

}  // namespace
}  // namespace raidrel::rng
