#include "sweep/sweep_spec.h"

#include <gtest/gtest.h>

#include <set>

#include "core/presets.h"
#include "util/error.h"
#include "workload/read_errors.h"

namespace raidrel::sweep {
namespace {

core::ScenarioConfig small_base() {
  core::ScenarioConfig s;
  s.group_drives = 4;
  s.mission_hours = 20000.0;
  s.ttop = {0.0, 4000.0, 1.2};
  s.ttr = {6.0, 100.0, 2.0};
  s.ttld = stats::WeibullParams{0.0, 2000.0, 1.0};
  s.ttscrub = stats::WeibullParams{6.0, 300.0, 3.0};
  return s;
}

TEST(SweepSpec, NoAxesExpandsToTheBase) {
  const SweepSpec spec("solo", small_base());
  EXPECT_EQ(spec.cell_count(), 1u);
  const auto cells = spec.expand();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].label, "base");
  EXPECT_EQ(cells[0].scenario.name, "solo/base");
  EXPECT_TRUE(cells[0].coordinates.empty());
  EXPECT_NE(cells[0].config_digest, 0u);
}

TEST(SweepSpec, ScrubAxisSetsEtaAndNonePoint) {
  SweepSpec spec("s", small_base());
  spec.add_scrub_period_axis({168.0, 48.0}, /*include_no_scrub=*/true);
  const auto cells = spec.expand();
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0].label, "scrub=none");
  EXPECT_FALSE(cells[0].scenario.ttscrub.has_value());
  EXPECT_EQ(cells[1].label, "scrub=168");
  ASSERT_TRUE(cells[1].scenario.ttscrub.has_value());
  EXPECT_DOUBLE_EQ(cells[1].scenario.ttscrub->eta, 168.0);
  // Location/shape come from the base law, only eta is swept.
  EXPECT_DOUBLE_EQ(cells[1].scenario.ttscrub->gamma, 6.0);
  EXPECT_DOUBLE_EQ(cells[1].scenario.ttscrub->beta, 3.0);
  EXPECT_DOUBLE_EQ(cells[2].scenario.ttscrub->eta, 48.0);
}

TEST(SweepSpec, CartesianProductLastAxisFastest) {
  SweepSpec spec("grid", small_base());
  spec.add_restore_eta_axis({12.0, 24.0});
  spec.add_group_size_axis({4, 6, 8});
  EXPECT_EQ(spec.cell_count(), 6u);
  const auto cells = spec.expand();
  ASSERT_EQ(cells.size(), 6u);
  // Row-major: restore varies slowest, group fastest.
  EXPECT_EQ(cells[0].label, "restore=12 group=4");
  EXPECT_EQ(cells[1].label, "restore=12 group=6");
  EXPECT_EQ(cells[2].label, "restore=12 group=8");
  EXPECT_EQ(cells[3].label, "restore=24 group=4");
  EXPECT_EQ(cells[5].label, "restore=24 group=8");
  EXPECT_DOUBLE_EQ(cells[3].scenario.ttr.eta, 24.0);
  EXPECT_EQ(cells[5].scenario.group_drives, 8u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
    ASSERT_EQ(cells[i].coordinates.size(), 2u);
    EXPECT_EQ(cells[i].coordinates[0].first, "restore");
    EXPECT_EQ(cells[i].coordinates[1].first, "group");
  }
}

TEST(SweepSpec, DigestsDifferAcrossCellsAndAreStable) {
  SweepSpec spec("d", small_base());
  spec.add_restore_eta_axis({12.0, 24.0, 48.0});
  const auto a = spec.expand();
  const auto b = spec.expand();
  std::set<std::uint64_t> digests;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].config_digest, b[i].config_digest);  // deterministic
    digests.insert(a[i].config_digest);
  }
  EXPECT_EQ(digests.size(), a.size());  // all distinct
}

TEST(SweepSpec, Table1LatentAxisMatchesTheGrid) {
  SweepSpec spec("t1", small_base());
  spec.add_table1_latent_axis();
  const auto grid = workload::table1_grid();
  const auto cells = spec.expand();
  ASSERT_EQ(cells.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(cells[i].coordinates[0].second,
              grid[i].rer_label + "/" + grid[i].rate_label);
    ASSERT_TRUE(cells[i].scenario.ttld.has_value());
    EXPECT_DOUBLE_EQ(cells[i].scenario.ttld->eta,
                     1.0 / grid[i].errors_per_hour);
    EXPECT_DOUBLE_EQ(cells[i].scenario.ttld->beta, 1.0);
  }
}

TEST(SweepSpec, OpLawAxisReplacesTheWholeLaw) {
  SweepSpec spec("v", small_base());
  spec.add_op_law_axis({{"young", {0.0, 8000.0, 1.0}},
                        {"wearout", {0.0, 3000.0, 1.5}}});
  const auto cells = spec.expand();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[1].label, "op-law=wearout");
  EXPECT_DOUBLE_EQ(cells[1].scenario.ttop.eta, 3000.0);
  EXPECT_DOUBLE_EQ(cells[1].scenario.ttop.beta, 1.5);
}

TEST(SweepSpec, Validation) {
  EXPECT_THROW(SweepSpec("", small_base()), ModelError);
  SweepSpec spec("v", small_base());
  EXPECT_THROW(spec.add_axis({"empty", {}}), ModelError);
  EXPECT_THROW(spec.add_axis({"", {{"x", [](core::ScenarioConfig&) {}}}}),
               ModelError);
  EXPECT_THROW(spec.add_axis({"nolabel", {{"", [](core::ScenarioConfig&) {}}}}),
               ModelError);
  EXPECT_THROW(spec.add_axis({"noapply", {{"x", nullptr}}}), ModelError);
  spec.add_restore_eta_axis({12.0});
  EXPECT_THROW(spec.add_restore_eta_axis({24.0}), ModelError);  // dup name
  EXPECT_THROW(spec.add_group_size_axis({1}), ModelError);
  EXPECT_THROW(spec.add_scrub_period_axis({-5.0}), ModelError);
  EXPECT_THROW(spec.add_latent_rate_axis({{"zero", 0.0}}), ModelError);
}

TEST(SweepSpec, ScrubAxisRequiresBaseScrubLaw) {
  core::ScenarioConfig base = small_base();
  base.ttscrub.reset();
  SweepSpec spec("s", base);
  spec.add_scrub_period_axis({168.0});
  EXPECT_THROW(spec.expand(), ModelError);
}

}  // namespace
}  // namespace raidrel::sweep
