#include "util/grid.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace raidrel::util {
namespace {

TEST(Linspace, EndpointsAndSpacing) {
  const auto v = linspace(0.0, 10.0, 11);
  ASSERT_EQ(v.size(), 11u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 10.0);
  EXPECT_DOUBLE_EQ(v[3], 3.0);
}

TEST(Linspace, TwoPoints) {
  const auto v = linspace(-1.0, 1.0, 2);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], -1.0);
  EXPECT_DOUBLE_EQ(v[1], 1.0);
}

TEST(Linspace, RejectsSinglePoint) {
  EXPECT_THROW(linspace(0.0, 1.0, 1), ModelError);
}

TEST(Logspace, GeometricSpacing) {
  const auto v = logspace(1.0, 1000.0, 4);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_NEAR(v[0], 1.0, 1e-12);
  EXPECT_NEAR(v[1], 10.0, 1e-9);
  EXPECT_NEAR(v[2], 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(v[3], 1000.0);
}

TEST(Logspace, RejectsNonPositive) {
  EXPECT_THROW(logspace(0.0, 10.0, 3), ModelError);
}

TEST(Buckets, CountAndEdges) {
  EXPECT_EQ(bucket_count(100.0, 10.0), 10u);
  EXPECT_EQ(bucket_count(105.0, 10.0), 11u);
  const auto edges = bucket_edges(105.0, 10.0);
  ASSERT_EQ(edges.size(), 11u);
  EXPECT_DOUBLE_EQ(edges[0], 10.0);
  EXPECT_DOUBLE_EQ(edges[9], 100.0);
  EXPECT_DOUBLE_EQ(edges.back(), 105.0);  // clipped final bucket
}

TEST(Buckets, IndexBoundaries) {
  EXPECT_EQ(bucket_index(0.0, 100.0, 10.0), 0u);
  EXPECT_EQ(bucket_index(9.999, 100.0, 10.0), 0u);
  EXPECT_EQ(bucket_index(10.0, 100.0, 10.0), 1u);
  EXPECT_EQ(bucket_index(99.99, 100.0, 10.0), 9u);
  EXPECT_EQ(bucket_index(100.0, 100.0, 10.0), 9u);  // horizon -> last bucket
}

TEST(Buckets, IndexRejectsOutOfRange) {
  EXPECT_THROW(bucket_index(-1.0, 100.0, 10.0), ModelError);
  EXPECT_THROW(bucket_index(101.0, 100.0, 10.0), ModelError);
}

TEST(Buckets, ClippedFinalBucketIndex) {
  // 105-h horizon, 10-h buckets: the 11th bucket is half width, and both
  // its interior and t == horizon land in it.
  EXPECT_EQ(bucket_index(100.0, 105.0, 10.0), 10u);
  EXPECT_EQ(bucket_index(104.9, 105.0, 10.0), 10u);
  EXPECT_EQ(bucket_index(105.0, 105.0, 10.0), 10u);  // t == horizon
}

TEST(Buckets, ExactEdgeTiesGoRight) {
  // Every interior edge belongs to the bucket it opens, matching the
  // IndexBoundaries convention at t = 10.
  EXPECT_EQ(bucket_index(20.0, 100.0, 10.0), 2u);
  EXPECT_EQ(bucket_index(90.0, 100.0, 10.0), 9u);
}

TEST(Buckets, WidthWiderThanHorizon) {
  // A single clipped bucket covers everything.
  EXPECT_EQ(bucket_count(5.0, 10.0), 1u);
  const auto edges = bucket_edges(5.0, 10.0);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_DOUBLE_EQ(edges[0], 5.0);
  EXPECT_EQ(bucket_index(0.0, 5.0, 10.0), 0u);
  EXPECT_EQ(bucket_index(5.0, 5.0, 10.0), 0u);
}

TEST(Buckets, PaperGeometry) {
  // 10-year mission, ~monthly buckets: the geometry every bench uses.
  EXPECT_EQ(bucket_count(87600.0, 730.0), 120u);
  EXPECT_EQ(bucket_index(8760.0, 87600.0, 730.0), 12u);  // year-1 edge
}

}  // namespace
}  // namespace raidrel::util
