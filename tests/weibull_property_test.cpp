// Parameterized Weibull property sweep: the identities the simulator's
// correctness rides on, verified across the (gamma, eta, beta) space the
// experiments actually use — including the paper's exact Table 2 values.
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "stats/weibull.h"
#include "util/math.h"

namespace raidrel::stats {
namespace {

class WeibullSweep
    : public ::testing::TestWithParam<WeibullParams> {};

TEST_P(WeibullSweep, QuantileCdfRoundTrip) {
  const Weibull w(GetParam());
  for (double p = 0.02; p < 1.0; p += 0.049) {
    EXPECT_NEAR(w.cdf(w.quantile(p)), p, 1e-10) << "p=" << p;
  }
}

TEST_P(WeibullSweep, MeanMatchesQuadrature) {
  const Weibull w(GetParam());
  const double ub = w.quantile(1.0 - 1e-13);
  const double numeric = util::integrate(
      [&](double t) { return w.survival(t); }, 0.0, ub, 1e-10 * ub);
  EXPECT_NEAR(w.mean(), numeric, 1e-5 * w.mean());
}

TEST_P(WeibullSweep, VarianceMatchesQuadrature) {
  const Weibull w(GetParam());
  const double ub = w.quantile(1.0 - 1e-13);
  const double m2 = util::integrate(
      [&](double t) { return 2.0 * t * w.survival(t); }, 0.0, ub,
      1e-10 * ub * ub);
  const double numeric = m2 - w.mean() * w.mean();
  EXPECT_NEAR(w.variance(), numeric, 1e-4 * w.variance() + 1e-12);
}

TEST_P(WeibullSweep, HazardIntegratesToCumHazard) {
  const Weibull w(GetParam());
  const double t0 = w.quantile(0.1);
  const double t1 = w.quantile(0.8);
  // Integrate away from the gamma singularity (beta < 1).
  const double numeric = util::integrate(
      [&](double t) { return w.hazard(t); }, t0, t1, 1e-12 * (t1 - t0));
  EXPECT_NEAR(numeric, w.cum_hazard(t1) - w.cum_hazard(t0),
              1e-6 * std::max(1.0, w.cum_hazard(t1)));
}

TEST_P(WeibullSweep, ResidualHazardAccumulation) {
  // The conditional sampler inverts H(t+r) = H(t) + E: check the identity
  // by transforming residual draws back to Exp(1) via the hazard.
  const Weibull w(GetParam());
  const double age = w.quantile(0.4);
  rng::RandomStream rs(0xFEED);
  util::RunningStats exp_back;
  for (int i = 0; i < 20000; ++i) {
    const double r = w.sample_residual(age, rs);
    exp_back.add(w.cum_hazard(age + r) - w.cum_hazard(age));
  }
  EXPECT_NEAR(exp_back.mean(), 1.0, 0.03);      // Exp(1) mean
  EXPECT_NEAR(exp_back.variance(), 1.0, 0.08);  // Exp(1) variance
}

TEST_P(WeibullSweep, SamplesNeverBelowLocation) {
  const Weibull w(GetParam());
  rng::RandomStream rs(0xBEEF);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(w.sample(rs), w.location());
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, WeibullSweep,
    ::testing::Values(
        // The paper's Table 2 laws.
        WeibullParams{0.0, 461386.0, 1.12},  // TTOp
        WeibullParams{6.0, 12.0, 2.0},       // TTR
        WeibullParams{0.0, 9259.0, 1.0},     // TTLd
        WeibullParams{6.0, 168.0, 3.0},      // TTScrub
        // Shape extremes from Fig. 10 and the field data.
        WeibullParams{0.0, 461386.0, 0.8},
        WeibullParams{0.0, 461386.0, 1.5},
        WeibullParams{0.0, 4.5444e5, 1.0987},  // vintage 1
        WeibullParams{0.0, 7.5012e4, 1.4873},  // vintage 3
        // Stress cases: strong infant mortality, steep wear-out, large
        // location relative to scale.
        WeibullParams{0.0, 100.0, 0.5},
        WeibullParams{0.0, 100.0, 5.0},
        WeibullParams{90.0, 10.0, 2.0}),
    [](const ::testing::TestParamInfo<WeibullParams>& info) {
      std::ostringstream os;
      os << "g" << info.param.gamma << "_e" << info.param.eta << "_b"
         << info.param.beta;
      std::string s = os.str();
      for (char& c : s) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return s;
    });

}  // namespace
}  // namespace raidrel::stats
