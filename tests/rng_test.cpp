#include "rng/rng.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace raidrel::rng {
namespace {

TEST(Splitmix64, KnownSequence) {
  // Reference values for seed 0 (Vigna's splitmix64.c).
  std::uint64_t s = 0;
  EXPECT_EQ(splitmix64(s), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(splitmix64(s), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(splitmix64(s), 0x06C45D188009454FULL);
}

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, AllZeroStateIsRepaired) {
  Xoshiro256 z(std::array<std::uint64_t, 4>{0, 0, 0, 0});
  // A true all-zero xoshiro state would emit zeros forever.
  bool any_nonzero = false;
  for (int i = 0; i < 8; ++i) any_nonzero |= (z() != 0);
  EXPECT_TRUE(any_nonzero);
}

TEST(Xoshiro, JumpDecorrelates) {
  Xoshiro256 a(7);
  Xoshiro256 b = a;
  b.jump();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(RandomStream, UniformInHalfOpenUnit) {
  RandomStream rs(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = rs.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RandomStream, UniformOpenNeverHitsEndpoints) {
  RandomStream rs(42);
  for (int i = 0; i < 100000; ++i) {
    const double u = rs.uniform_open();
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RandomStream, UniformMeanAndVariance) {
  RandomStream rs(7);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rs.uniform();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.003);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.002);
}

TEST(RandomStream, UniformRange) {
  RandomStream rs(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rs.uniform(5.0, 9.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(RandomStream, UniformIndexCoversAllValuesUnbiased) {
  RandomStream rs(11);
  std::array<int, 7> counts{};
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rs.uniform_index(7)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 7.0, 5.0 * std::sqrt(n / 7.0));
  }
}

TEST(RandomStream, ExponentialMeanOne) {
  RandomStream rs(13);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rs.exponential();
  EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(RandomStream, NormalMomentsAndTails) {
  RandomStream rs(17);
  double sum = 0.0, sum2 = 0.0;
  int beyond3 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double z = rs.normal();
    sum += z;
    sum2 += z * z;
    if (std::abs(z) > 3.0) ++beyond3;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
  // P(|Z|>3) ~ 0.0027.
  EXPECT_NEAR(static_cast<double>(beyond3) / n, 0.0027, 0.001);
}

TEST(RandomStream, BernoulliFrequency) {
  RandomStream rs(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rs.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.006);
}

TEST(StreamFactory, SameIdReproduces) {
  StreamFactory f(1234);
  auto a = f.stream(55);
  auto b = f.stream(55);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(StreamFactory, DistinctIdsDecorrelated) {
  StreamFactory f(1234);
  auto a = f.stream(0);
  auto b = f.stream(1);
  int same = 0;
  for (int i = 0; i < 256; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(StreamFactory, ManyStreamsFirstDrawsLookUniform) {
  StreamFactory f(777);
  // The first uniform of 10k consecutive streams should itself be uniform:
  // catches weak seed-to-state mixing.
  double sum = 0.0;
  std::set<std::uint64_t> firsts;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    auto s = f.stream(static_cast<std::uint64_t>(i));
    const std::uint64_t raw = s.next_u64();
    firsts.insert(raw);
    sum += static_cast<double>(raw >> 11) * 0x1.0p-53;
  }
  EXPECT_EQ(firsts.size(), static_cast<std::size_t>(n));  // no collisions
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

}  // namespace
}  // namespace raidrel::rng
