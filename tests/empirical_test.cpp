#include "stats/empirical.h"

#include <cmath>

#include <gtest/gtest.h>

#include "rng/rng.h"
#include "stats/weibull.h"
#include "util/error.h"

namespace raidrel::stats {
namespace {

TEST(MedianRank, BernardApproximation) {
  EXPECT_NEAR(median_rank(1, 10), 0.7 / 10.4, 1e-12);
  EXPECT_NEAR(median_rank(10, 10), 9.7 / 10.4, 1e-12);
  EXPECT_THROW(median_rank(0, 10), ModelError);
  EXPECT_THROW(median_rank(11, 10), ModelError);
}

TEST(WeibullPlot, PointsAreSortedAndTransformed) {
  const auto pts = weibull_plot_points({30.0, 10.0, 20.0});
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[0].time, 10.0);
  EXPECT_DOUBLE_EQ(pts[2].time, 30.0);
  for (const auto& p : pts) {
    EXPECT_NEAR(p.x, std::log(p.time), 1e-12);
    EXPECT_NEAR(p.y, std::log(-std::log(1.0 - p.f_estimate)), 1e-12);
  }
  // F estimates strictly increasing.
  EXPECT_LT(pts[0].f_estimate, pts[1].f_estimate);
  EXPECT_LT(pts[1].f_estimate, pts[2].f_estimate);
}

TEST(WeibullPlot, TrueWeibullSamplesFallOnAStraightLine) {
  const Weibull w(0.0, 1000.0, 2.0);
  rng::RandomStream rs(1);
  std::vector<double> times;
  for (int i = 0; i < 5000; ++i) times.push_back(w.sample(rs));
  const auto pts = weibull_plot_points(times);
  // Regress y on x and verify slope ~ beta with high linearity.
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (const auto& p : pts) {
    sx += p.x;
    sy += p.y;
    sxx += p.x * p.x;
    sxy += p.x * p.y;
    syy += p.y * p.y;
  }
  const double n = static_cast<double>(pts.size());
  const double slope = (sxy - sx * sy / n) / (sxx - sx * sx / n);
  const double r2 = (sxy - sx * sy / n) * (sxy - sx * sy / n) /
                    ((sxx - sx * sx / n) * (syy - sy * sy / n));
  EXPECT_NEAR(slope, 2.0, 0.1);
  EXPECT_GT(r2, 0.98);
}

TEST(WeibullPlot, CensoredRanksShiftLaterFailures) {
  // Johnson adjustment: suspensions between failures push the adjusted
  // ranks of subsequent failures upward relative to the no-censoring case.
  LifeData data{{100.0, true}, {150.0, false}, {150.0, false}, {200.0, true},
                {250.0, true}, {300.0, false}};
  const auto pts = weibull_plot_points_censored(data);
  ASSERT_EQ(pts.size(), 3u);
  // First failure: no prior suspensions, rank 1 as usual.
  EXPECT_NEAR(pts[0].f_estimate, (1.0 - 0.3) / (6.0 + 0.4), 1e-12);
  // Later failures have adjusted rank increments > 1.
  const double inc1 = pts[1].f_estimate - pts[0].f_estimate;
  EXPECT_GT(inc1, (1.0 - 1e-12) / 6.4);
  EXPECT_LT(pts.back().f_estimate, 1.0);
}

TEST(WeibullPlot, CensoredWithNoSuspensionsMatchesComplete) {
  LifeData data{{10.0, true}, {20.0, true}, {30.0, true}};
  const auto censored = weibull_plot_points_censored(data);
  const auto complete = weibull_plot_points({10.0, 20.0, 30.0});
  ASSERT_EQ(censored.size(), complete.size());
  for (std::size_t i = 0; i < censored.size(); ++i) {
    EXPECT_NEAR(censored[i].f_estimate, complete[i].f_estimate, 1e-9);
  }
}

TEST(WeibullPlot, AllCensoredThrows) {
  LifeData data{{10.0, false}, {20.0, false}};
  EXPECT_THROW(weibull_plot_points_censored(data), ModelError);
}

TEST(EmpiricalCdf, StepsThroughData) {
  EmpiricalCdf e({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(e.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e.cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 1.0);
}

TEST(KaplanMeier, NoCensoringMatchesEmpirical) {
  LifeData data{{1.0, true}, {2.0, true}, {3.0, true}, {4.0, true}};
  KaplanMeier km(data);
  EXPECT_DOUBLE_EQ(km.survival(0.5), 1.0);
  EXPECT_DOUBLE_EQ(km.survival(1.0), 0.75);
  EXPECT_DOUBLE_EQ(km.survival(2.5), 0.5);
  EXPECT_DOUBLE_EQ(km.survival(4.0), 0.0);
}

TEST(KaplanMeier, CensoringReducesRiskSetOnly) {
  // Classic textbook example: censored unit leaves the risk set without a
  // survival drop.
  LifeData data{{1.0, true}, {2.0, false}, {3.0, true}, {4.0, true}};
  KaplanMeier km(data);
  EXPECT_DOUBLE_EQ(km.survival(1.5), 0.75);
  // At t=3: risk set is {3,4} -> survival 0.75 * (1 - 1/2) = 0.375.
  EXPECT_DOUBLE_EQ(km.survival(3.5), 0.375);
}

TEST(KaplanMeier, TiedDeathsHandled) {
  LifeData data{{2.0, true}, {2.0, true}, {5.0, true}, {7.0, false}};
  KaplanMeier km(data);
  // Two deaths out of four at t=2.
  EXPECT_DOUBLE_EQ(km.survival(2.0), 0.5);
  ASSERT_EQ(km.steps().size(), 2u);
  EXPECT_EQ(km.steps()[0].deaths, 2u);
  EXPECT_EQ(km.steps()[0].at_risk, 4u);
}

TEST(KaplanMeier, TracksTrueSurvivalOfCensoredWeibull) {
  const Weibull w(0.0, 100.0, 1.5);
  rng::RandomStream rs(77);
  LifeData data;
  const double window = 120.0;
  for (int i = 0; i < 20000; ++i) {
    const double t = w.sample(rs);
    data.push_back(t < window ? LifeObservation{t, true}
                              : LifeObservation{window, false});
  }
  KaplanMeier km(data);
  for (double t : {20.0, 60.0, 100.0}) {
    EXPECT_NEAR(km.survival(t), w.survival(t), 0.02) << t;
  }
}

TEST(KaplanMeier, GreenwoodVarianceIsSmallForLargeN) {
  const Weibull w(0.0, 100.0, 1.0);
  rng::RandomStream rs(78);
  LifeData data;
  for (int i = 0; i < 5000; ++i) data.push_back({w.sample(rs), true});
  KaplanMeier km(data);
  const double var = km.greenwood_variance(50.0);
  EXPECT_GT(var, 0.0);
  EXPECT_LT(std::sqrt(var), 0.02);
}

}  // namespace
}  // namespace raidrel::stats
