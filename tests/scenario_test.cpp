#include "core/scenario.h"

#include <gtest/gtest.h>

#include "core/presets.h"
#include "util/error.h"

namespace raidrel::core {
namespace {

TEST(Scenario, BaseCaseMatchesTable2) {
  const auto cfg = presets::base_case();
  EXPECT_EQ(cfg.group_drives, 8u);
  EXPECT_EQ(cfg.redundancy, 1u);
  EXPECT_DOUBLE_EQ(cfg.mission_hours, 87600.0);
  EXPECT_DOUBLE_EQ(cfg.ttop.eta, 461386.0);
  EXPECT_DOUBLE_EQ(cfg.ttop.beta, 1.12);
  EXPECT_DOUBLE_EQ(cfg.ttr.gamma, 6.0);
  EXPECT_DOUBLE_EQ(cfg.ttr.eta, 12.0);
  EXPECT_DOUBLE_EQ(cfg.ttr.beta, 2.0);
  ASSERT_TRUE(cfg.ttld.has_value());
  EXPECT_DOUBLE_EQ(cfg.ttld->eta, 9259.0);
  EXPECT_DOUBLE_EQ(cfg.ttld->beta, 1.0);
  ASSERT_TRUE(cfg.ttscrub.has_value());
  EXPECT_DOUBLE_EQ(cfg.ttscrub->gamma, 6.0);
  EXPECT_DOUBLE_EQ(cfg.ttscrub->eta, 168.0);
  EXPECT_DOUBLE_EQ(cfg.ttscrub->beta, 3.0);
}

TEST(Scenario, ToGroupConfigMaterializesAllLaws) {
  const auto group = presets::base_case().to_group_config();
  EXPECT_EQ(group.total_drives(), 8u);
  EXPECT_EQ(group.data_drives(), 7u);
  for (const auto& slot : group.slots) {
    EXPECT_TRUE(slot.latent_defects_enabled());
    EXPECT_TRUE(slot.scrubbing_enabled());
  }
  EXPECT_NO_THROW(group.validate());
}

TEST(Scenario, NoLatentVariantsDropLaws) {
  const auto group = presets::no_latent_defects().to_group_config();
  for (const auto& slot : group.slots) {
    EXPECT_FALSE(slot.latent_defects_enabled());
    EXPECT_FALSE(slot.scrubbing_enabled());
  }
}

TEST(Scenario, ScrubWithoutLatentRejected) {
  ScenarioConfig cfg = presets::base_case();
  cfg.ttld.reset();  // keep ttscrub
  EXPECT_THROW(cfg.to_group_config(), ModelError);
}

TEST(Scenario, RedundancyBoundsValidatedWithDriverFriendlyMessages) {
  // The CLI/scenario boundary must reject impossible geometries before
  // they reach the engines, naming the offending numbers.
  ScenarioConfig no_check = presets::base_case();
  no_check.redundancy = 0;
  try {
    no_check.to_group_config();
    FAIL() << "redundancy 0 must be rejected";
  } catch (const ModelError& e) {
    EXPECT_NE(std::string(e.what()).find("at least 1 check drive"),
              std::string::npos)
        << e.what();
  }

  ScenarioConfig all_checks = presets::base_case();
  all_checks.group_drives = 4;
  all_checks.redundancy = 4;  // no data drive left
  try {
    all_checks.to_group_config();
    FAIL() << "group_drives == redundancy must be rejected";
  } catch (const ModelError& e) {
    EXPECT_NE(std::string(e.what()).find("group_drives > redundancy"),
              std::string::npos)
        << e.what();
  }

  // m >= 3 general erasure codes are valid geometry, not an error.
  ScenarioConfig wide = presets::base_case();
  wide.group_drives = 12;
  wide.redundancy = 4;
  EXPECT_NO_THROW(wide.to_group_config().validate());
}

TEST(Scenario, SummaryMentionsEveryLaw) {
  const auto s = presets::base_case().summary();
  EXPECT_NE(s.find("TTOp"), std::string::npos);
  EXPECT_NE(s.find("TTR"), std::string::npos);
  EXPECT_NE(s.find("TTLd"), std::string::npos);
  EXPECT_NE(s.find("TTScrub"), std::string::npos);
  const auto ns = presets::base_case_no_scrub().summary();
  EXPECT_NE(ns.find("no-scrub"), std::string::npos);
}

TEST(Presets, Fig6VariantsDifferAsLabeled) {
  using presets::Fig6Variant;
  const auto cc = presets::fig6_variant(Fig6Variant::kConstConst);
  EXPECT_DOUBLE_EQ(cc.ttop.beta, 1.0);
  EXPECT_DOUBLE_EQ(cc.ttr.beta, 1.0);
  EXPECT_DOUBLE_EQ(cc.ttr.gamma, 0.0);
  EXPECT_FALSE(cc.ttld.has_value());

  const auto ftc = presets::fig6_variant(Fig6Variant::kTimeDepConst);
  EXPECT_DOUBLE_EQ(ftc.ttop.beta, 1.12);
  EXPECT_DOUBLE_EQ(ftc.ttr.beta, 1.0);

  const auto crt = presets::fig6_variant(Fig6Variant::kConstTimeDep);
  EXPECT_DOUBLE_EQ(crt.ttop.beta, 1.0);
  EXPECT_DOUBLE_EQ(crt.ttr.gamma, 6.0);

  const auto ftrt = presets::fig6_variant(Fig6Variant::kTimeDepTimeDep);
  EXPECT_DOUBLE_EQ(ftrt.ttop.beta, 1.12);
  EXPECT_DOUBLE_EQ(ftrt.ttr.beta, 2.0);

  EXPECT_EQ(presets::all_fig6_variants().size(), 4u);
  EXPECT_STREQ(presets::to_string(Fig6Variant::kConstConst), "c-c");
}

TEST(Presets, ScrubSweepReplacesOnlyScrubEta) {
  const auto cfg = presets::with_scrub_duration(48.0);
  ASSERT_TRUE(cfg.ttscrub.has_value());
  EXPECT_DOUBLE_EQ(cfg.ttscrub->eta, 48.0);
  EXPECT_DOUBLE_EQ(cfg.ttscrub->gamma, 6.0);
  EXPECT_DOUBLE_EQ(cfg.ttscrub->beta, 3.0);
  EXPECT_DOUBLE_EQ(cfg.ttld->eta, 9259.0);  // untouched
  const auto sweep = presets::fig9_scrub_durations();
  EXPECT_EQ(sweep.size(), 4u);
  EXPECT_DOUBLE_EQ(sweep[0], 12.0);
  EXPECT_DOUBLE_EQ(sweep[3], 336.0);
}

TEST(Presets, ShapeSweepReplacesOnlyOpBeta) {
  const auto cfg = presets::with_op_shape(0.8);
  EXPECT_DOUBLE_EQ(cfg.ttop.beta, 0.8);
  EXPECT_DOUBLE_EQ(cfg.ttop.eta, 461386.0);
  const auto shapes = presets::fig10_shapes();
  EXPECT_EQ(shapes.size(), 5u);
  EXPECT_DOUBLE_EQ(shapes[2], 1.12);
}

TEST(Presets, Raid6BaseCaseGeometry) {
  const auto cfg = presets::raid6_base_case();
  EXPECT_EQ(cfg.group_drives, 10u);
  EXPECT_EQ(cfg.redundancy, 2u);
  EXPECT_NO_THROW(cfg.to_group_config().validate());
}

TEST(Presets, MixedVintageGroupCyclesPublishedLaws) {
  const auto cfg = presets::mixed_vintage_group();
  ASSERT_EQ(cfg.slots.size(), 8u);
  EXPECT_NO_THROW(cfg.validate());
  // Slots 0 and 3 share vintage 1; slots 0 and 1 differ.
  EXPECT_EQ(cfg.slots[0].time_to_op_failure->describe(),
            cfg.slots[3].time_to_op_failure->describe());
  EXPECT_NE(cfg.slots[0].time_to_op_failure->describe(),
            cfg.slots[1].time_to_op_failure->describe());
  // Vintage 3's eta (7.5012e4) appears in some slot.
  bool found = false;
  for (const auto& s : cfg.slots) {
    found |= s.time_to_op_failure->describe().find("75012") !=
             std::string::npos;
  }
  EXPECT_TRUE(found);
  // No-scrub variant drops the scrub law but keeps defects.
  const auto ns = presets::mixed_vintage_group(87600.0, false);
  EXPECT_FALSE(ns.slots[0].scrubbing_enabled());
  EXPECT_TRUE(ns.slots[0].latent_defects_enabled());
}

TEST(Presets, MttdlInputsMatchEq3Example) {
  const auto in = presets::mttdl_inputs();
  EXPECT_EQ(in.data_drives, 7u);
  EXPECT_DOUBLE_EQ(in.mttf_hours, 461386.0);
  EXPECT_DOUBLE_EQ(in.mttr_hours, 12.0);
}

}  // namespace
}  // namespace raidrel::core
