// Property suite over the event-driven engine: invariants that must hold
// for ANY configuration — exercised across a parameter sweep of group
// sizes, redundancies, time scales, scrub policies and spare pools.
#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "sim/group_simulator.h"
#include "stats/weibull.h"

namespace raidrel::sim {
namespace {

struct EngineCase {
  unsigned drives;
  unsigned redundancy;
  double op_eta;
  double op_beta;
  double ld_eta;       // <= 0: latent defects off
  double scrub_eta;    // <= 0: scrubbing off
  bool spare_pool;
  bool clear_on_ddf;

  [[nodiscard]] std::string label() const {
    std::ostringstream os;
    os << "d" << drives << "_r" << redundancy << "_op" << op_eta << "b"
       << op_beta * 100 << (ld_eta > 0 ? "_ld" : "_nold")
       << (scrub_eta > 0 ? "_scrub" : "") << (spare_pool ? "_pool" : "")
       << (clear_on_ddf ? "_clr" : "");
    std::string s = os.str();
    for (char& c : s) {
      if (c == '.' || c == '+' || c == '-') c = '_';
    }
    return s;
  }
};

raid::GroupConfig build(const EngineCase& c) {
  raid::SlotModel m;
  m.time_to_op_failure =
      std::make_unique<stats::Weibull>(0.0, c.op_eta, c.op_beta);
  m.time_to_restore = std::make_unique<stats::Weibull>(6.0, 50.0, 2.0);
  if (c.ld_eta > 0.0) {
    m.time_to_latent_defect =
        std::make_unique<stats::Weibull>(0.0, c.ld_eta, 1.0);
    if (c.scrub_eta > 0.0) {
      m.time_to_scrub =
          std::make_unique<stats::Weibull>(6.0, c.scrub_eta, 3.0);
    }
  }
  auto cfg = raid::make_uniform_group(c.drives, c.redundancy, m, 20000.0);
  cfg.clear_defects_on_ddf_restore = c.clear_on_ddf;
  if (c.spare_pool) cfg.spare_pool = raid::SparePoolConfig{2, 200.0};
  return cfg;
}

std::vector<EngineCase> all_cases() {
  std::vector<EngineCase> cases;
  for (unsigned red : {1u, 2u}) {
    for (double beta : {0.8, 1.0, 1.4}) {
      cases.push_back({red == 1 ? 8u : 10u, red, 3000.0, beta, 800.0, 150.0,
                       false, true});
    }
  }
  cases.push_back({4, 1, 2000.0, 1.12, 500.0, -1.0, false, true});   // no scrub
  cases.push_back({8, 1, 3000.0, 1.12, -1.0, -1.0, false, true});    // no LDs
  cases.push_back({8, 1, 3000.0, 1.12, 800.0, 150.0, true, true});   // pool
  cases.push_back({8, 1, 3000.0, 1.12, 800.0, 150.0, true, false});  // §5 mode
  cases.push_back({3, 1, 1500.0, 1.0, 400.0, 100.0, false, true});   // tiny
  cases.push_back({16, 2, 4000.0, 1.2, 1000.0, 200.0, false, true}); // wide
  return cases;
}

class EngineInvariants : public ::testing::TestWithParam<EngineCase> {
 protected:
  static constexpr int kTrials = 150;
};

TEST_P(EngineInvariants, EventAccountingIsConsistent) {
  const auto cfg = build(GetParam());
  GroupSimulator sim(cfg);
  rng::StreamFactory streams(101);
  TrialResult out;
  for (int i = 0; i < kTrials; ++i) {
    auto rs = streams.stream(static_cast<std::uint64_t>(i));
    sim.run_trial(rs, out);
    // Restores never exceed failures; scrubs never exceed defects.
    EXPECT_LE(out.restores_completed, out.op_failures);
    EXPECT_LE(out.scrubs_completed, out.latent_defects);
    // Probe entries are at most one per op failure, each a probability.
    EXPECT_LE(out.double_op_probe.size(), out.op_failures);
    for (const auto& [t, p] : out.double_op_probe) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
      EXPECT_GE(t, 0.0);
      EXPECT_LT(t, cfg.mission_hours);
    }
  }
}

TEST_P(EngineInvariants, DdfTimelineIsSane) {
  const auto cfg = build(GetParam());
  GroupSimulator sim(cfg);
  rng::StreamFactory streams(202);
  TrialResult out;
  for (int i = 0; i < kTrials; ++i) {
    auto rs = streams.stream(static_cast<std::uint64_t>(i));
    sim.run_trial(rs, out);
    // DDFs sorted in time, strictly inside the mission, and each one only
    // possible if at least redundancy+1 faults can exist: a DDF needs at
    // least one op failure.
    EXPECT_TRUE(std::is_sorted(
        out.ddfs.begin(), out.ddfs.end(),
        [](const raid::DdfEvent& a, const raid::DdfEvent& b) {
          return a.time < b.time;
        }));
    for (const auto& ddf : out.ddfs) {
      EXPECT_GE(ddf.time, 0.0);
      EXPECT_LT(ddf.time, cfg.mission_hours);
    }
    if (!out.ddfs.empty()) {
      EXPECT_GE(out.op_failures, 1u);
      // A latent-then-op DDF requires at least one latent defect.
      for (const auto& ddf : out.ddfs) {
        if (ddf.kind == raid::DdfKind::kLatentThenOp) {
          EXPECT_GE(out.latent_defects, 1u);
        }
      }
    }
  }
}

TEST_P(EngineInvariants, SameSeedReproducesExactly) {
  const auto cfg = build(GetParam());
  GroupSimulator sim(cfg);
  rng::StreamFactory streams(303);
  TrialResult a, b;
  auto rs1 = streams.stream(7);
  sim.run_trial(rs1, a);
  auto rs2 = streams.stream(7);
  sim.run_trial(rs2, b);
  ASSERT_EQ(a.ddfs.size(), b.ddfs.size());
  for (std::size_t i = 0; i < a.ddfs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.ddfs[i].time, b.ddfs[i].time);
    EXPECT_EQ(a.ddfs[i].kind, b.ddfs[i].kind);
  }
  EXPECT_EQ(a.op_failures, b.op_failures);
  EXPECT_EQ(a.latent_defects, b.latent_defects);
  EXPECT_EQ(a.scrubs_completed, b.scrubs_completed);
  ASSERT_EQ(a.double_op_probe.size(), b.double_op_probe.size());
  for (std::size_t i = 0; i < a.double_op_probe.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.double_op_probe[i].second,
                     b.double_op_probe[i].second);
  }
}

TEST_P(EngineInvariants, NoLatentConfigNeverReportsLatentActivity) {
  const auto param = GetParam();
  if (param.ld_eta > 0.0) GTEST_SKIP() << "latent defects enabled";
  const auto cfg = build(param);
  GroupSimulator sim(cfg);
  rng::StreamFactory streams(404);
  TrialResult out;
  for (int i = 0; i < kTrials; ++i) {
    auto rs = streams.stream(static_cast<std::uint64_t>(i));
    sim.run_trial(rs, out);
    EXPECT_EQ(out.latent_defects, 0u);
    EXPECT_EQ(out.scrubs_completed, 0u);
    for (const auto& ddf : out.ddfs) {
      EXPECT_EQ(ddf.kind, raid::DdfKind::kDoubleOperational);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineInvariants, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<EngineCase>& info) {
      return info.param.label();
    });

}  // namespace
}  // namespace raidrel::sim
