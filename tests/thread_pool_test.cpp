// ThreadPool exception safety (sim/thread_pool.h): a throwing task must
// surface on the coordinating thread instead of std::terminate, and the
// same pool must stay fully usable for the next run().
#include "sim/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>

#include "fault/fault_injection.h"
#include "util/cancel.h"
#include "util/error.h"

namespace {

using raidrel::ModelError;
using raidrel::sim::ThreadPool;
namespace fault = raidrel::fault;
namespace util = raidrel::util;

TEST(ThreadPool, ZeroTasksReturnsImmediatelyWithoutSpawning) {
  ThreadPool pool;
  std::atomic<int> calls{0};
  pool.run(0, [&] { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_EQ(pool.worker_count(), 0u);
}

TEST(ThreadPool, RunsEveryTaskAndBlocksUntilDone) {
  ThreadPool pool;
  std::atomic<int> calls{0};
  pool.run(4, [&] { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 4);
  EXPECT_EQ(pool.worker_count(), 4u);
}

TEST(ThreadPool, WorkerExceptionRethrownOnCallerAndPoolStaysUsable) {
  ThreadPool pool;
  std::atomic<int> calls{0};
  std::atomic<int> turn{0};
  auto job = [&] {
    calls.fetch_add(1);
    if (turn.fetch_add(1) == 0) throw std::runtime_error("task 0 died");
  };
  try {
    pool.run(3, job);
    FAIL() << "worker exception was swallowed";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 0 died");
  }
  // Every task of the faulted run() still executed (no half-drained run).
  EXPECT_EQ(calls.load(), 3);

  // The same pool instance must survive the exception: follow-up run()s
  // behave as if nothing happened.
  std::atomic<int> again{0};
  pool.run(3, [&] { again.fetch_add(1); });
  EXPECT_EQ(again.load(), 3);
}

TEST(ThreadPool, FirstExceptionWinsWhenEveryTaskThrows) {
  ThreadPool pool;
  std::atomic<int> calls{0};
  try {
    pool.run(4, [&] {
      const int id = calls.fetch_add(1);
      throw std::runtime_error("task " + std::to_string(id));
    });
    FAIL() << "worker exceptions were swallowed";
  } catch (const std::runtime_error& e) {
    // Exactly one of the four exceptions is rethrown; which one is
    // scheduling-dependent, but it must be one of them.
    EXPECT_EQ(std::string(e.what()).rfind("task ", 0), 0u) << e.what();
  }
  EXPECT_EQ(calls.load(), 4);
}

TEST(ThreadPool, PoolTaskSiteFiresBeforeTheTaskBody) {
  ThreadPool pool;
  fault::FaultInjector injector{fault::FaultPlan::parse("pool_task:1")};
  pool.set_fault_injector(&injector);
  std::atomic<int> calls{0};
  // Two tasks, first pool_task hit armed: exactly one task body is
  // skipped and the injected fault surfaces on the caller.
  EXPECT_THROW(pool.run(2, [&] { calls.fetch_add(1); }),
               fault::InjectedFault);
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(injector.hits("pool_task"), 2u);
  EXPECT_EQ(injector.injected("pool_task"), 1u);

  // Detaching the injector restores the unfaulted fast path.
  pool.set_fault_injector(nullptr);
  pool.run(2, [&] { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPool, CancelledTokenDrainsTheRunAndRethrows) {
  // The pool-level cancellation hook: a tripped token makes every worker
  // skip its task body and the cancellation surface on the caller — the
  // same drain-and-rethrow protocol as a worker exception.
  ThreadPool pool;
  util::CancelToken token;
  token.request_cancel();
  pool.set_cancel_token(&token);
  std::atomic<int> calls{0};
  EXPECT_THROW(pool.run(3, [&] { calls.fetch_add(1); }),
               util::OperationCancelled);
  EXPECT_EQ(calls.load(), 0);

  // Detaching the token restores the unpolled fast path, and the pool
  // instance survives the cancelled run.
  pool.set_cancel_token(nullptr);
  pool.run(3, [&] { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPool, UncancelledTokenLeavesRunsUnaffected) {
  ThreadPool pool;
  const util::CancelToken token;
  pool.set_cancel_token(&token);
  std::atomic<int> calls{0};
  pool.run(4, [&] { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 4);
}

TEST(ThreadPool, ReusableAcrossManyFaultedRuns) {
  // Stress the park/rethrow cycle: the pool must not leak permits or
  // deadlock after repeated failures (the sweep retry loop depends on it).
  ThreadPool pool;
  fault::FaultInjector injector{
      fault::FaultPlan::parse("pool_task:1*100")};
  pool.set_fault_injector(&injector);
  for (int round = 0; round < 10; ++round) {
    EXPECT_THROW(pool.run(2, [] {}), fault::InjectedFault);
  }
  pool.set_fault_injector(nullptr);
  std::atomic<int> calls{0};
  pool.run(2, [&] { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 2);
}

}  // namespace
